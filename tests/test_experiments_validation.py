"""Tests for the cost-model validation harness."""

import pytest

from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform, weather_like
from repro.experiments.harness import experiment_disk
from repro.experiments.validation import (
    ModelValidation,
    validate_cost_model,
)


@pytest.fixture(scope="module")
def validation():
    # Uniform data validated under the uniform model (fractal_dim=None):
    # this isolates the model formulas from the finite-sample bias of
    # the D_2 estimator (which test_auto_df_within_bounds covers).
    data, queries = make_workload(
        uniform, n=8_000, n_queries=8, seed=0, dim=8
    )
    tree = IQTree.build(data, disk=experiment_disk(), fractal_dim=None)
    return validate_cost_model(tree, queries)


class TestValidation:
    def test_fields_populated(self, validation):
        assert validation.measured_pages >= 1
        assert validation.measured_time > 0
        assert validation.predicted_pages >= 1
        assert validation.predicted_time > 0

    def test_ratios_defined(self, validation):
        assert validation.pages_ratio > 0
        assert validation.refinements_ratio >= 0
        assert validation.time_ratio > 0

    def test_page_prediction_tight_under_uniform_model(self, validation):
        assert 0.4 < validation.pages_ratio < 2.5

    def test_refinement_prediction_tight(self, validation):
        assert 0.3 < validation.refinements_ratio < 3.0

    def test_time_prediction_tight_under_uniform_model(self, validation):
        assert 0.5 < validation.time_ratio < 2.0

    def test_auto_df_within_bounds(self):
        """With the estimated D_2 (finite-sample underestimate on truly
        full-dimensional data) predictions drift but stay usable."""
        data, queries = make_workload(
            uniform, n=8_000, n_queries=6, seed=3, dim=8
        )
        tree = IQTree.build(data, disk=experiment_disk())
        v = validate_cost_model(tree, queries)
        assert 0.05 < v.pages_ratio < 10.0
        assert 0.2 < v.time_ratio < 5.0

    def test_summary_readable(self, validation):
        text = validation.summary()
        assert "pages" in text and "refinements" in text and "ms" in text

    def test_on_correlated_data(self):
        data, queries = make_workload(
            weather_like, n=8_000, n_queries=6, seed=1
        )
        tree = IQTree.build(data, disk=experiment_disk())
        v = validate_cost_model(tree, queries)
        # Low-D_F data is the hard case for the model; require the
        # prediction to stay within 1.5 orders of magnitude.
        assert 0.03 < v.time_ratio < 30.0

    def test_knn_prediction_grows_with_k(self):
        data, queries = make_workload(
            uniform, n=6_000, n_queries=5, seed=2, dim=8
        )
        t1 = IQTree.build(data, disk=experiment_disk(), k_for_cost=1)
        t10 = IQTree.build(data, disk=experiment_disk(), k_for_cost=10)
        v1 = validate_cost_model(t1, queries, k=1)
        v10 = validate_cost_model(t10, queries, k=10)
        assert v10.predicted_pages >= v1.predicted_pages
        assert v10.measured_pages >= v1.measured_pages

    def test_dataclass_direct_construction(self):
        v = ModelValidation(10, 5, 2, 1, 0.1, 0.05)
        assert v.pages_ratio == pytest.approx(2.0)
        assert v.refinements_ratio == pytest.approx(2.0)
        assert v.time_ratio == pytest.approx(2.0)
