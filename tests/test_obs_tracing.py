"""Query tracing: span nesting, exact simulated-I/O attribution,
cross-worker span stitching, exporters, and the no-op fast path when
nobody is tracing."""

from __future__ import annotations

import json
import pickle

import pytest

import repro.engine.engine as engine_mod
from repro.core.tree import IQTree
from repro.exceptions import SearchError
from repro.obs.export import chrome_trace, export_trace, otlp_spans
from repro.obs.tracing import (
    Span,
    SpanIO,
    SpanRecord,
    Tracer,
    _NULL_SPAN,
    active_tracer,
    ledger_state,
    span,
    trace_query,
)
from repro.storage.disk import DiskModel, IOStats, SimulatedDisk


@pytest.fixture
def tree(rng):
    disk = SimulatedDisk(
        DiskModel(t_seek=0.010, t_xfer=0.001, block_size=512)
    )
    return IQTree.build(rng.random((800, 6)), disk=disk)


class TestSpanIO:
    def test_arithmetic(self):
        a = SpanIO(seeks=2, blocks_read=5, blocks_overread=1, elapsed=0.5)
        b = SpanIO(seeks=1, blocks_read=2, blocks_overread=0, elapsed=0.2)
        assert (a - b).seeks == 1
        assert (a + b).blocks_read == 7
        assert (a - b).elapsed == pytest.approx(0.3)


class TestTracerStructure:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        root = tracer.root
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.children[0].children[0].name == "a1"
        assert root.find("a1") is root.children[0].children[0]
        assert root.find("missing") is None

    def test_wall_clock_recorded(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        assert tracer.root.wall_seconds >= 0.0

    def test_json_round_trip(self):
        tracer = Tracer()
        with tracer.span("root", queries=3):
            with tracer.span("child"):
                pass
        payload = json.loads(tracer.to_json())
        assert payload["spans"][0]["name"] == "root"
        assert payload["spans"][0]["attrs"] == {"queries": 3}
        assert payload["spans"][0]["children"][0]["name"] == "child"

    def test_render_lists_all_spans(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        rendered = tracer.render()
        assert "root" in rendered and "child" in rendered


class TestAmbientSpan:
    def test_null_span_outside_trace_query(self):
        assert active_tracer() is None
        assert span("anything") is _NULL_SPAN
        with span("anything") as node:
            assert node is None

    def test_active_inside_trace_query(self, tree):
        with trace_query(tree) as tracer:
            assert active_tracer() is tracer
            with span("inner") as node:
                assert isinstance(node, Span)
        assert active_tracer() is None
        assert tracer.root.children[0].name == "inner"

    def test_tracer_popped_on_error(self, tree):
        with pytest.raises(RuntimeError):
            with trace_query(tree):
                raise RuntimeError("boom")
        assert active_tracer() is None


class TestIOAttribution:
    def test_engine_spans_sum_to_batch_total(self, tree, rng):
        """Acceptance: per-span own I/O sums to the IOStats ledger."""
        engine = tree.query_engine()
        queries = rng.random((4, 6))
        with trace_query(engine) as tracer:
            batch = engine.knn_batch(queries, k=3)
        root = tracer.root
        own = SpanIO()
        for node in root.walk():
            own = own + node.own_io
        ledger = batch.stats.io
        assert own.seeks == ledger.seeks == root.io.seeks
        assert own.blocks_read == ledger.blocks_read
        assert own.blocks_overread == ledger.blocks_overread
        assert own.elapsed == pytest.approx(ledger.elapsed, abs=1e-12)

    def test_engine_emits_expected_span_chain(self, tree, rng):
        engine = tree.query_engine()
        with trace_query(engine) as tracer:
            engine.knn_batch(rng.random((2, 6)), k=2)
        names = [c.name for c in tracer.root.children]
        assert names[:2] == ["directory-scan", "schedule"]
        assert "refine" in names
        # Cold tree: the candidate pages must actually be fetched.
        assert "fetch" in names and "decode" in names

    def test_directory_scan_io_positive(self, tree, rng):
        engine = tree.query_engine()
        with trace_query(engine) as tracer:
            engine.knn_batch(rng.random((2, 6)), k=2)
        scan = tracer.root.find("directory-scan")
        assert scan.io.blocks_read >= 1

    def test_range_batch_traces_too(self, tree, rng):
        engine = tree.query_engine()
        with trace_query(engine) as tracer:
            batch = engine.range_batch(rng.random((3, 6)), radius=0.4)
        own = SpanIO()
        for node in tracer.root.walk():
            own = own + node.own_io
        assert own.elapsed == pytest.approx(
            batch.stats.io.elapsed, abs=1e-12
        )

    def test_disk_none_records_zero_io(self):
        with trace_query(None) as tracer:
            with span("inner"):
                pass
        assert tracer.root.io == SpanIO()

    def test_untraced_run_unaffected(self, tree, rng):
        """Running without trace_query must not create spans anywhere."""
        engine = tree.query_engine()
        engine.knn_batch(rng.random((2, 6)), k=2)
        assert active_tracer() is None


class TestSimulatedClock:
    """The deterministic second clock: sim_start / sim_seconds."""

    def test_sim_seconds_equals_io_elapsed(self, tree, rng):
        engine = tree.query_engine()
        with trace_query(engine) as tracer:
            engine.knn_batch(rng.random((3, 6)), k=2)
        for node in tracer.root.walk():
            assert node.sim_seconds == pytest.approx(
                node.io.elapsed, abs=1e-15
            )

    def test_child_windows_nest_inside_parent(self, tree, rng):
        engine = tree.query_engine()
        with trace_query(engine) as tracer:
            engine.knn_batch(rng.random((3, 6)), k=2)
        for node in tracer.root.walk():
            for child in node.children:
                assert child.sim_start >= node.sim_start - 1e-12
                assert (
                    child.sim_start + child.sim_seconds
                    <= node.sim_start + node.sim_seconds + 1e-9
                )

    def test_sim_dict_excludes_wall_clock(self, tree, rng):
        engine = tree.query_engine()
        with trace_query(engine) as tracer:
            engine.knn_batch(rng.random((2, 6)), k=2)
        for node in tracer.root.walk():
            payload = node.sim_dict()
            assert "wall_seconds" not in payload
            assert payload["sim_seconds"] == node.sim_seconds

    def test_sim_dict_bit_identical_across_runs(self):
        """The deterministic projection of two identical runs matches
        byte for byte (the wall clock never would)."""
        dumps = []
        for _ in range(2):
            rng = __import__("numpy").random.default_rng(7)
            disk = SimulatedDisk(
                DiskModel(t_seek=0.010, t_xfer=0.001, block_size=512)
            )
            tree = IQTree.build(rng.random((600, 6)), disk=disk)
            engine = tree.query_engine()
            with trace_query(engine) as tracer:
                engine.knn_batch(rng.random((4, 6)), k=3)
            dumps.append(
                json.dumps(tracer.root.sim_dict(), sort_keys=True)
            )
        assert dumps[0] == dumps[1]


class TestSpanRecord:
    """The picklable worker-to-coordinator span carrier."""

    def test_capture_windows_the_ledger_delta(self):
        ledger = IOStats()
        before = ledger_state(ledger)
        ledger.seeks = 2
        ledger.blocks_read = 7
        ledger.elapsed = 0.5
        rec = SpanRecord.capture("unit", ledger, before, query=3)
        assert rec.name == "unit"
        assert rec.attrs == (("query", 3),)
        assert (rec.seeks, rec.blocks_read) == (2, 7)
        assert rec.sim_start == 0.0
        assert rec.sim_seconds == pytest.approx(0.5)

    def test_capture_none_ledger_is_all_zero(self):
        rec = SpanRecord.capture("idle", None, ledger_state(None))
        assert rec.sim_seconds == 0.0
        assert rec.seeks == rec.blocks_read == 0

    def test_records_pickle_round_trip(self):
        rec = SpanRecord(
            name="plan-query",
            attrs=(("query", 1),),
            sim_seconds=0.25,
            children=(SpanRecord(name="inner"),),
        )
        clone = pickle.loads(pickle.dumps(rec))
        assert clone == rec
        assert clone.children[0].name == "inner"

    def test_stitch_grafts_under_the_open_span(self):
        disk = SimulatedDisk(
            DiskModel(t_seek=0.010, t_xfer=0.001, block_size=512)
        )
        tracer = Tracer(disk)
        records = [
            SpanRecord(name="plan-query", attrs=(("query", 0),)),
            SpanRecord(name="plan-query", attrs=(("query", 1),)),
        ]
        with tracer.span("refine"):
            disk.read_blocks(0, 3)
            base = disk.stats.elapsed
            spans = tracer.stitch(records)
        refine = tracer.root
        assert refine.name == "refine"
        assert [c.name for c in refine.children] == [
            "plan-query",
            "plan-query",
        ]
        assert refine.children[0].attrs == {"query": 0}
        # Re-based onto the coordinator clock at stitch time.
        assert spans[0].sim_start == pytest.approx(base)
        assert spans[0].wall_seconds == 0.0

    def test_stitch_worker_delta_becomes_span_io(self):
        tracer = Tracer()
        rec = SpanRecord(
            name="assemble-query",
            sim_start=0.0,
            sim_seconds=0.125,
            seeks=1,
            blocks_read=4,
        )
        with tracer.span("root"):
            (node,) = tracer.stitch([rec])
        assert node.io == SpanIO(
            seeks=1, blocks_read=4, blocks_overread=0, elapsed=0.125
        )
        assert node.sim_seconds == 0.125

    def test_stitch_without_open_span_adds_roots(self):
        tracer = Tracer()
        tracer.stitch([SpanRecord(name="orphan")])
        assert [r.name for r in tracer.roots] == ["orphan"]


class TestExporters:
    def make_trace(self, tree, rng):
        engine = tree.query_engine()
        with trace_query(engine, name="knn-batch") as tracer:
            engine.knn_batch(rng.random((3, 6)), k=2)
        return tracer

    def test_chrome_events_are_matched_and_monotone(self, tree, rng):
        tracer = self.make_trace(tree, rng)
        events = tracer.root.to_events()
        last_ts = float("-inf")
        stack = []
        for event in events:
            assert event["ts"] >= last_ts
            last_ts = event["ts"]
            if event["ph"] == "B":
                stack.append(event["name"])
            else:
                assert event["ph"] == "E"
                assert stack.pop() == event["name"]
        assert stack == []

    def test_chrome_trace_shape(self, tree, rng):
        tracer = self.make_trace(tree, rng)
        payload = chrome_trace(tracer)
        assert payload["displayTimeUnit"] == "ms"
        assert payload["traceEvents"]
        json.dumps(payload)  # must be serializable as-is

    def test_begin_events_carry_own_io(self, tree, rng):
        tracer = self.make_trace(tree, rng)
        begins = [
            e for e in tracer.root.to_events() if e["ph"] == "B"
        ]
        for event in begins:
            assert "own_seeks" in event["args"]
            assert "own_blocks" in event["args"]
        total = sum(e["args"]["own_blocks"] for e in begins)
        assert total == tracer.root.io.blocks_read

    def test_otlp_shape_and_deterministic_ids(self, tree, rng):
        tracer = self.make_trace(tree, rng)
        payload = otlp_spans(tracer)
        spans = payload["resourceSpans"][0]["scopeSpans"][0]["spans"]
        assert spans[0]["name"] == "knn-batch"
        ids = [s["spanId"] for s in spans]
        assert ids == [f"{i + 1:016x}" for i in range(len(spans))]
        assert len({s["traceId"] for s in spans}) == 1
        # Children reference their parent by id.
        by_id = {s["spanId"]: s for s in spans}
        for s in spans[1:]:
            assert s["parentSpanId"] in by_id
        json.dumps(payload)

    def test_export_trace_dispatch(self, tree, rng):
        tracer = self.make_trace(tree, rng)
        assert export_trace(tracer, "chrome") == chrome_trace(tracer)
        assert export_trace(tracer, "otlp") == otlp_spans(tracer)
        with pytest.raises(ValueError):
            export_trace(tracer, "jaeger")


class TestDistributedAttribution:
    """Worker-side spans: stitched in, exact, and loud when missing."""

    def own_sum(self, tracer) -> SpanIO:
        own = SpanIO()
        for node in tracer.root.walk():
            own = own + node.own_io
        return own

    def test_own_io_invariant_under_process_backend(self, tree, rng):
        engine = tree.query_engine(workers=4, backend="process")
        queries = rng.random((8, 6))
        try:
            with trace_query(engine) as tracer:
                batch = engine.knn_batch(queries, k=3)
        finally:
            engine.close()
        own = self.own_sum(tracer)
        ledger = batch.stats.io
        assert own.seeks == ledger.seeks == tracer.root.io.seeks
        assert own.blocks_read == ledger.blocks_read
        assert own.elapsed == pytest.approx(ledger.elapsed, abs=1e-12)

    def test_worker_spans_stitched_into_refine(self, tree, rng):
        engine = tree.query_engine(workers=2, backend="thread")
        queries = rng.random((5, 6))
        try:
            with trace_query(engine) as tracer:
                engine.knn_batch(queries, k=3)
        finally:
            engine.close()
        refine = tracer.root.find("refine")
        plans = refine.find_all("plan-query")
        assembles = refine.find_all("assemble-query")
        assert len(plans) == len(assembles) == queries.shape[0]
        # Stitched in query order regardless of worker sharding.
        assert [p.attrs["query"] for p in plans] == list(range(5))
        assert [a.attrs["query"] for a in assembles] == list(range(5))
        # Plans land before the exact fetch they feed.
        names = [c.name for c in refine.children]
        assert names.index("fetch-exact") > names.index("plan-query")

    def test_trace_identical_across_workers_and_backends(self, rng):
        """Acceptance: stitched trees are bit-identical for any
        worker count and backend (sim projection, not wall clock)."""
        points = rng.random((800, 6))
        queries = rng.random((6, 6))
        dumps = []
        for workers, backend in [
            (1, "thread"),
            (2, "thread"),
            (4, "process"),
        ]:
            disk = SimulatedDisk(
                DiskModel(t_seek=0.010, t_xfer=0.001, block_size=512)
            )
            tree = IQTree.build(points, disk=disk)
            engine = tree.query_engine(
                workers=workers, backend=backend
            )
            try:
                with trace_query(engine, name="knn-batch") as tracer:
                    engine.knn_batch(queries, k=3)
            finally:
                engine.close()
            dumps.append(
                json.dumps(tracer.root.sim_dict(), sort_keys=True)
            )
        assert dumps[0] == dumps[1] == dumps[2]

    def test_own_io_invariant_under_fault_injection(self, tree, rng):
        from repro.storage.runtime_faults import ReadFaultInjector

        inj = ReadFaultInjector()
        inj.fail_always(tree._quant_file.extent_start)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        engine = tree.query_engine(workers=2, backend="thread")
        try:
            with trace_query(engine) as tracer:
                batch = engine.knn_batch(rng.random((6, 6)), k=3)
        finally:
            engine.close()
        assert batch.stats.degraded
        own = self.own_sum(tracer)
        ledger = batch.stats.io
        assert own.seeks == ledger.seeks
        assert own.blocks_read == ledger.blocks_read
        assert own.elapsed == pytest.approx(ledger.elapsed, abs=1e-12)

    def test_missing_worker_spans_raise_under_pytest(
        self, tree, rng, monkeypatch
    ):
        """Satellite: a kernel that drops its span records while a
        trace is active must fail loudly, not silently thin the tree.

        The stripping wrapper is a local (unpicklable), so this runs
        on the default inline/thread path -- which is exactly where
        the engine-side stitch check lives.
        """
        real = engine_mod.plan_knn_shard

        def stripping(task, indices, ledger):
            plans = real(task, indices, ledger)
            for plan in plans:
                plan.pop("spans", None)
            return plans

        monkeypatch.setattr(engine_mod, "plan_knn_shard", stripping)
        engine = tree.query_engine()
        with trace_query(engine):
            with pytest.raises(SearchError, match="span"):
                engine.knn_batch(rng.random((2, 6)), k=2)

    def test_no_tracer_means_no_records_requested(self, tree, rng):
        """Workers only pay for span capture when a trace is active."""
        engine = tree.query_engine()
        batch = engine.knn_batch(rng.random((2, 6)), k=2)
        assert batch.stats.n_queries == 2  # and no SearchError raised
