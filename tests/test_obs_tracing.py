"""Query tracing: span nesting, exact simulated-I/O attribution, and
the no-op fast path when nobody is tracing."""

from __future__ import annotations

import json

import pytest

from repro.core.tree import IQTree
from repro.obs.tracing import (
    Span,
    SpanIO,
    Tracer,
    _NULL_SPAN,
    active_tracer,
    span,
    trace_query,
)
from repro.storage.disk import DiskModel, SimulatedDisk


@pytest.fixture
def tree(rng):
    disk = SimulatedDisk(
        DiskModel(t_seek=0.010, t_xfer=0.001, block_size=512)
    )
    return IQTree.build(rng.random((800, 6)), disk=disk)


class TestSpanIO:
    def test_arithmetic(self):
        a = SpanIO(seeks=2, blocks_read=5, blocks_overread=1, elapsed=0.5)
        b = SpanIO(seeks=1, blocks_read=2, blocks_overread=0, elapsed=0.2)
        assert (a - b).seeks == 1
        assert (a + b).blocks_read == 7
        assert (a - b).elapsed == pytest.approx(0.3)


class TestTracerStructure:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                with tracer.span("a1"):
                    pass
            with tracer.span("b"):
                pass
        root = tracer.root
        assert [c.name for c in root.children] == ["a", "b"]
        assert root.children[0].children[0].name == "a1"
        assert root.find("a1") is root.children[0].children[0]
        assert root.find("missing") is None

    def test_wall_clock_recorded(self):
        tracer = Tracer()
        with tracer.span("root"):
            pass
        assert tracer.root.wall_seconds >= 0.0

    def test_json_round_trip(self):
        tracer = Tracer()
        with tracer.span("root", queries=3):
            with tracer.span("child"):
                pass
        payload = json.loads(tracer.to_json())
        assert payload["spans"][0]["name"] == "root"
        assert payload["spans"][0]["attrs"] == {"queries": 3}
        assert payload["spans"][0]["children"][0]["name"] == "child"

    def test_render_lists_all_spans(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        rendered = tracer.render()
        assert "root" in rendered and "child" in rendered


class TestAmbientSpan:
    def test_null_span_outside_trace_query(self):
        assert active_tracer() is None
        assert span("anything") is _NULL_SPAN
        with span("anything") as node:
            assert node is None

    def test_active_inside_trace_query(self, tree):
        with trace_query(tree) as tracer:
            assert active_tracer() is tracer
            with span("inner") as node:
                assert isinstance(node, Span)
        assert active_tracer() is None
        assert tracer.root.children[0].name == "inner"

    def test_tracer_popped_on_error(self, tree):
        with pytest.raises(RuntimeError):
            with trace_query(tree):
                raise RuntimeError("boom")
        assert active_tracer() is None


class TestIOAttribution:
    def test_engine_spans_sum_to_batch_total(self, tree, rng):
        """Acceptance: per-span own I/O sums to the IOStats ledger."""
        engine = tree.query_engine()
        queries = rng.random((4, 6))
        with trace_query(engine) as tracer:
            batch = engine.knn_batch(queries, k=3)
        root = tracer.root
        own = SpanIO()
        for node in root.walk():
            own = own + node.own_io
        ledger = batch.stats.io
        assert own.seeks == ledger.seeks == root.io.seeks
        assert own.blocks_read == ledger.blocks_read
        assert own.blocks_overread == ledger.blocks_overread
        assert own.elapsed == pytest.approx(ledger.elapsed, abs=1e-12)

    def test_engine_emits_expected_span_chain(self, tree, rng):
        engine = tree.query_engine()
        with trace_query(engine) as tracer:
            engine.knn_batch(rng.random((2, 6)), k=2)
        names = [c.name for c in tracer.root.children]
        assert names[:2] == ["directory-scan", "schedule"]
        assert "refine" in names
        # Cold tree: the candidate pages must actually be fetched.
        assert "fetch" in names and "decode" in names

    def test_directory_scan_io_positive(self, tree, rng):
        engine = tree.query_engine()
        with trace_query(engine) as tracer:
            engine.knn_batch(rng.random((2, 6)), k=2)
        scan = tracer.root.find("directory-scan")
        assert scan.io.blocks_read >= 1

    def test_range_batch_traces_too(self, tree, rng):
        engine = tree.query_engine()
        with trace_query(engine) as tracer:
            batch = engine.range_batch(rng.random((3, 6)), radius=0.4)
        own = SpanIO()
        for node in tracer.root.walk():
            own = own + node.own_io
        assert own.elapsed == pytest.approx(
            batch.stats.io.elapsed, abs=1e-12
        )

    def test_disk_none_records_zero_io(self):
        with trace_query(None) as tracer:
            with span("inner"):
                pass
        assert tracer.root.io == SpanIO()

    def test_untraced_run_unaffected(self, tree, rng):
        """Running without trace_query must not create spans anywhere."""
        engine = tree.query_engine()
        engine.knn_batch(rng.random((2, 6)), k=2)
        assert active_tracer() is None
