"""Tests for saving/loading an IQ-tree to a real file."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.core.tree import IQTree
from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.persistence import load_iqtree, save_iqtree


@pytest.fixture
def tree(uniform_points, small_disk):
    return IQTree.build(uniform_points[:800], disk=small_disk)


class TestRoundTrip:
    def test_structure_preserved(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        assert loaded.n_points == tree.n_points
        assert loaded.dim == tree.dim
        assert loaded.n_pages == tree.n_pages
        assert np.array_equal(loaded.page_bits, tree.page_bits)
        assert np.array_equal(loaded.points, tree.points)
        assert loaded.metric.name == tree.metric.name
        assert loaded.cost_model.fractal_dim == pytest.approx(
            tree.cost_model.fractal_dim
        )

    def test_queries_identical_after_reload(self, tree, tmp_path, rng):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        for _ in range(5):
            q = rng.random(8)
            a = tree.nearest(q, k=3)
            b = loaded.nearest(q, k=3)
            assert np.array_equal(a.ids, b.ids)
            assert np.allclose(a.distances, b.distances)

    def test_io_costs_identical_after_reload(self, tree, tmp_path, rng):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        q = rng.random(8)
        tree.disk.park()
        loaded.disk.park()
        assert tree.nearest(q).io.elapsed == pytest.approx(
            loaded.nearest(q).io.elapsed
        )

    def test_loaded_tree_supports_maintenance(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        new_id = loaded.insert(np.full(8, 0.77))
        hit = loaded.nearest(np.full(8, 0.77), k=1)
        assert hit.ids[0] == new_id

    def test_maintenance_state_saved(self, tree, tmp_path, rng):
        """Save after churn: the mutated structure round-trips."""
        for _ in range(30):
            tree.insert(rng.random(8))
        tree.delete(5)
        path = tmp_path / "churned.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        assert loaded.n_live_points == tree.n_live_points
        q = rng.random(8)
        assert np.allclose(
            loaded.nearest(q, k=4).distances,
            tree.nearest(q, k=4).distances,
        )

    def test_custom_disk_on_load(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        disk = SimulatedDisk(tree.disk.model)
        loaded = load_iqtree(path, disk=disk)
        assert loaded.disk is disk


class TestValidation:
    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.iqt"
        path.write_bytes(b"NOTATREE" + b"\x00" * 64)
        with pytest.raises(StorageError):
            load_iqtree(path)

    def test_corrupt_header_rejected(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        raw = bytearray(path.read_bytes())
        raw[20] ^= 0xFF  # flip a byte inside the JSON header
        path.write_bytes(bytes(raw))
        with pytest.raises(StorageError):
            load_iqtree(path)

    def test_truncated_payload_rejected(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 100])
        with pytest.raises(StorageError):
            load_iqtree(path)

    def test_mismatched_block_size_rejected(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        other = SimulatedDisk(DiskModel(block_size=4096))
        with pytest.raises(StorageError):
            load_iqtree(path, disk=other)
