"""Tests for saving/loading an IQ-tree to a real file (v2 + legacy)."""

import numpy as np
import pytest

from repro.exceptions import IntegrityError, StorageError
from repro.core.optimizer import fixed_bits_partitions
from repro.core.tree import IQTree
from repro.costmodel.model import CostModel
from repro.geometry.metrics import get_metric
from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.persistence import (
    MAGIC_V2,
    load_iqtree,
    save_iqtree,
    section_spans,
    serialize_iqtree,
    verify_container,
    write_legacy_v1,
)


@pytest.fixture
def tree(uniform_points, small_disk):
    return IQTree.build(uniform_points[:800], disk=small_disk)


def float64_tree(rng, n=300, dim=6):
    """A tree over true float64 data (not float32-representable)."""
    points = rng.random((n, dim))
    disk = SimulatedDisk(DiskModel(block_size=512))
    solution = fixed_bits_partitions(points, 512, 8)
    metric = get_metric("euclidean")
    cost_model = CostModel(
        disk.model,
        dim,
        n,
        fractal_dim=float(dim),
        data_space_volume=1.0,
        metric=metric,
        k=1,
    )
    return IQTree(
        points, solution, disk, metric, cost_model, None, True
    )


class TestRoundTrip:
    def test_structure_preserved(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        assert loaded.n_points == tree.n_points
        assert loaded.dim == tree.dim
        assert loaded.n_pages == tree.n_pages
        assert np.array_equal(loaded.page_bits, tree.page_bits)
        assert np.array_equal(loaded.points, tree.points)
        assert loaded.metric.name == tree.metric.name
        assert loaded.cost_model.fractal_dim == pytest.approx(
            tree.cost_model.fractal_dim
        )

    def test_points_bit_exact(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        assert loaded.points.dtype == np.float64
        assert loaded.points.tobytes() == tree.points.tobytes()

    def test_float64_data_bit_exact(self, tmp_path, rng):
        """v2 preserves coordinates v1 silently rounded to float32."""
        tree = float64_tree(rng)
        assert tree.points.astype(np.float32).astype(
            np.float64
        ).tobytes() != tree.points.tobytes()
        path = tmp_path / "f64.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path, verify=True)
        assert loaded.points.tobytes() == tree.points.tobytes()
        q = rng.random(6)
        a = tree.nearest(q, k=4)
        b = loaded.nearest(q, k=4)
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)

    def test_legacy_v1_loses_float64_precision(self, tmp_path, rng):
        """The v1 regression this PR fixes, pinned as a legacy fact."""
        tree = float64_tree(rng)
        path = tmp_path / "f64v1.iqt"
        write_legacy_v1(tree, path)
        with pytest.warns(UserWarning, match="float32"):
            loaded = load_iqtree(path)
        assert loaded.points.tobytes() != tree.points.tobytes()

    def test_queries_identical_after_reload(self, tree, tmp_path, rng):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        for _ in range(5):
            q = rng.random(8)
            a = tree.nearest(q, k=3)
            b = loaded.nearest(q, k=3)
            assert np.array_equal(a.ids, b.ids)
            assert np.allclose(a.distances, b.distances)

    def test_io_costs_identical_after_reload(self, tree, tmp_path, rng):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        q = rng.random(8)
        tree.disk.park()
        loaded.disk.park()
        assert tree.nearest(q).io.elapsed == pytest.approx(
            loaded.nearest(q).io.elapsed
        )

    def test_loaded_tree_supports_maintenance(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        new_id = loaded.insert(np.full(8, 0.77))
        hit = loaded.nearest(np.full(8, 0.77), k=1)
        assert hit.ids[0] == new_id

    def test_maintenance_state_saved(self, tree, tmp_path, rng):
        """Save after churn: the mutated structure round-trips."""
        for _ in range(30):
            tree.insert(rng.random(8))
        tree.delete(5)
        path = tmp_path / "churned.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path)
        assert loaded.n_live_points == tree.n_live_points
        q = rng.random(8)
        assert np.allclose(
            loaded.nearest(q, k=4).distances,
            tree.nearest(q, k=4).distances,
        )

    def test_insert_extended_mbrs_survive_reload(self, tree, tmp_path, rng):
        """v2 stores page MBRs explicitly, so the insert-extended (not
        re-tightened) bounds round-trip and the relaid files match."""
        for _ in range(20):
            tree.insert(rng.random(8))
        path = tmp_path / "churned.iqt"
        save_iqtree(tree, path)
        loaded = load_iqtree(path, verify=True)
        for j in range(tree.n_pages):
            assert loaded.page_mbr(j) == tree.page_mbr(j)

    def test_custom_disk_on_load(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        disk = SimulatedDisk(tree.disk.model)
        loaded = load_iqtree(path, disk=disk)
        assert loaded.disk is disk


class TestAtomicSave:
    def test_no_temp_file_left_on_success(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        assert [p.name for p in tmp_path.iterdir()] == ["index.iqt"]

    def test_save_over_existing_container(self, tree, tmp_path, rng):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        tree.insert(rng.random(8))
        save_iqtree(tree, path)
        loaded = load_iqtree(path, verify=True)
        assert loaded.n_points == tree.n_points

    def test_fsync_optional(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path, fsync=False)
        assert verify_container(path).ok

    def test_serialize_is_deterministic(self, tree):
        assert serialize_iqtree(tree) == serialize_iqtree(tree)


class TestVerifyFlag:
    def test_verify_accepts_clean_container(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        load_iqtree(path, verify=True)

    def test_verify_requires_default_disk(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        with pytest.raises(StorageError, match="disk=None"):
            load_iqtree(
                path, disk=SimulatedDisk(tree.disk.model), verify=True
            )

    def test_verify_rejected_for_legacy_v1(self, tree, tmp_path):
        path = tmp_path / "v1.iqt"
        write_legacy_v1(tree, path)
        with pytest.raises(StorageError, match="v1"):
            load_iqtree(path, verify=True)


class TestLegacyV1:
    def test_loads_with_precision_warning(self, tree, tmp_path, rng):
        path = tmp_path / "v1.iqt"
        write_legacy_v1(tree, path)
        with pytest.warns(UserWarning, match="float32"):
            loaded = load_iqtree(path)
        # float32-canonical data is unharmed by the legacy format.
        assert np.array_equal(loaded.points, tree.points)
        q = rng.random(8)
        assert np.array_equal(
            loaded.nearest(q, k=3).ids, tree.nearest(q, k=3).ids
        )

    def test_v1_fsck_reports_legacy(self, tree, tmp_path):
        path = tmp_path / "v1.iqt"
        write_legacy_v1(tree, path)
        report = verify_container(path)
        assert report.version == 1
        assert report.ok
        assert "no checksum" in report.summary()

    def test_v1_truncation_detected(self, tree, tmp_path):
        path = tmp_path / "v1.iqt"
        write_legacy_v1(tree, path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-100])
        with pytest.warns(UserWarning):
            with pytest.raises(StorageError):
                load_iqtree(path)
        assert not verify_container(path).ok


class TestValidation:
    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "bogus.iqt"
        path.write_bytes(b"NOTATREE" + b"\x00" * 64)
        with pytest.raises(StorageError):
            load_iqtree(path)
        assert not verify_container(path).ok

    def test_mismatched_block_size_rejected(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        other = SimulatedDisk(DiskModel(block_size=4096))
        with pytest.raises(StorageError):
            load_iqtree(path, disk=other)

    def test_trailing_garbage_rejected(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        path.write_bytes(path.read_bytes() + b"\x00" * 8)
        with pytest.raises(IntegrityError, match="trailing"):
            load_iqtree(path)

    def test_section_spans_cover_container(self, tree, tmp_path):
        path = tmp_path / "index.iqt"
        save_iqtree(tree, path)
        raw = path.read_bytes()
        spans = section_spans(raw)
        assert raw[: len(MAGIC_V2)] == MAGIC_V2
        assert spans["header"] == (0, 48)
        assert spans["meta"][0] == 48
        assert spans["payload"][1] == len(raw)
        # Sections tile the file with no gaps.
        assert spans["meta"][1] == spans["index"][0]
        assert spans["index"][1] == spans["payload"][0]
        assert (
            spans["payload"][1] - spans["payload"][0]
            == tree.n_points * tree.dim * 8
        )
