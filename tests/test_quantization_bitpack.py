"""Tests for dense g-bit code packing."""

import numpy as np
import pytest

from repro.exceptions import QuantizationError
from repro.quantization.bitpack import (
    pack_codes,
    packed_size,
    unpack_codes,
    unpack_codes_bulk,
)


class TestPackedSize:
    def test_exact_byte_boundary(self):
        assert packed_size(8, 1) == 1
        assert packed_size(2, 4) == 1

    def test_rounds_up(self):
        assert packed_size(3, 3) == 2  # 9 bits -> 2 bytes

    def test_zero_codes(self):
        assert packed_size(0, 7) == 0

    def test_invalid(self):
        with pytest.raises(QuantizationError):
            packed_size(4, 0)
        with pytest.raises(QuantizationError):
            packed_size(-1, 4)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "bits", [1, 2, 3, 4, 5, 7, 8, 11, 16, 23, 31, 32]
    )
    def test_random_roundtrip(self, bits, rng):
        m, d = 50, 7
        codes = rng.integers(0, 2**bits, size=(m, d), dtype=np.uint64)
        codes = codes.astype(np.uint32)
        payload = pack_codes(codes, bits)
        assert len(payload) == packed_size(m * d, bits)
        assert np.array_equal(unpack_codes(payload, bits, m, d), codes)

    def test_extreme_values(self):
        for bits in (1, 9, 31, 32):
            codes = np.array(
                [[0, 2**bits - 1], [2**bits - 1, 0]], dtype=np.uint32
            )
            payload = pack_codes(codes, bits)
            assert np.array_equal(unpack_codes(payload, bits, 2, 2), codes)

    def test_empty(self):
        assert pack_codes(np.zeros((0, 3), dtype=np.uint32), 5) == b""
        out = unpack_codes(b"", 5, 0, 3)
        assert out.shape == (0, 3)

    def test_density(self):
        """Packing is dense: 1000 3-bit codes -> 375 bytes exactly."""
        codes = np.zeros(1000, dtype=np.uint32)
        assert len(pack_codes(codes, 3)) == 375


class TestBulkUnpack:
    def test_matches_scalar_unpack(self, rng):
        sizes = [0, 5, 31, 12]
        pages = [
            rng.integers(0, 2**11, size=(m, 6), dtype=np.uint64).astype(
                np.uint32
            )
            for m in sizes
        ]
        payloads = [pack_codes(c, 11) for c in pages]
        for codes, out in zip(
            pages, unpack_codes_bulk(payloads, 11, sizes, 6)
        ):
            assert np.array_equal(out, codes)

    def test_empty_batch(self):
        assert unpack_codes_bulk([], 8, [], 3) == []

    def test_all_empty_pages(self):
        out = unpack_codes_bulk([b"", b""], 8, [0, 0], 3)
        assert len(out) == 2
        assert all(o.shape == (0, 3) for o in out)

    def test_truncated_member_rejected(self):
        good = pack_codes(np.zeros((4, 4), dtype=np.uint32), 8)
        with pytest.raises(QuantizationError):
            unpack_codes_bulk([good, good[:-1]], 8, [4, 4], 4)

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(QuantizationError):
            unpack_codes_bulk([b""], 8, [0, 0], 3)
        with pytest.raises(QuantizationError):
            unpack_codes_bulk([b""], 8, [-1], 3)
        with pytest.raises(QuantizationError):
            unpack_codes_bulk([b""], 0, [0], 3)


class TestValidation:
    def test_out_of_range_code(self):
        codes = np.array([[4]], dtype=np.uint32)
        with pytest.raises(QuantizationError):
            pack_codes(codes, 2)

    def test_bits_out_of_range(self):
        codes = np.zeros((1, 1), dtype=np.uint32)
        with pytest.raises(QuantizationError):
            pack_codes(codes, 0)
        with pytest.raises(QuantizationError):
            pack_codes(codes, 33)

    def test_short_payload_rejected(self):
        payload = pack_codes(np.zeros((4, 4), dtype=np.uint32), 8)
        with pytest.raises(QuantizationError):
            unpack_codes(payload[:-1], 8, 4, 4)

    def test_bad_shape_rejected(self):
        with pytest.raises(QuantizationError):
            unpack_codes(b"\x00" * 16, 8, 4, 0)
