"""Tests for the Section 2 page-access strategies."""

import pytest

from repro.exceptions import StorageError
from repro.storage.disk import DiskModel
from repro.storage.scheduler import (
    batched_fetch_cost,
    batched_fetch_stats,
    cost_balance_window,
    plan_batched_fetch,
)


class TestPlanBatchedFetch:
    def test_empty(self):
        assert list(plan_batched_fetch([], 10)) == []

    def test_single_block(self):
        assert list(plan_batched_fetch([7], 10)) == [(7, 1, 1)]

    def test_small_gap_overread(self):
        # Gap of 2 skipped blocks < window 10: read through.
        runs = list(plan_batched_fetch([0, 3], 10))
        assert runs == [(0, 4, 2)]

    def test_large_gap_seeks(self):
        runs = list(plan_batched_fetch([0, 30], 10))
        assert runs == [(0, 1, 1), (30, 1, 1)]

    def test_gap_exactly_at_window_seeks(self):
        # Condition is gap * t_xfer < t_seek, strict: gap == window seeks.
        runs = list(plan_batched_fetch([0, 11], 10))
        assert runs == [(0, 1, 1), (11, 1, 1)]

    def test_gap_just_below_window_overreads(self):
        runs = list(plan_batched_fetch([0, 10], 10))
        assert runs == [(0, 11, 2)]

    def test_adjacent_blocks_merge(self):
        runs = list(plan_batched_fetch([4, 5, 6], 0))
        assert runs == [(4, 3, 3)]

    def test_mixed_pattern(self):
        runs = list(plan_batched_fetch([0, 2, 40, 41], 10))
        assert runs == [(0, 3, 2), (40, 2, 2)]

    def test_zero_window_never_overreads(self):
        runs = list(plan_batched_fetch([0, 2, 4], 0))
        assert runs == [(0, 1, 1), (2, 1, 1), (4, 1, 1)]

    def test_rejects_unsorted(self):
        with pytest.raises(StorageError):
            list(plan_batched_fetch([3, 1], 10))

    def test_rejects_duplicates(self):
        with pytest.raises(StorageError):
            list(plan_batched_fetch([1, 1], 10))


class TestBatchedFetchStats:
    def test_matches_cost(self):
        model = DiskModel(t_seek=0.010, t_xfer=0.001)
        blocks = [0, 3, 9, 40, 44, 90]
        stats = batched_fetch_stats(blocks, model)
        assert stats["elapsed"] == pytest.approx(
            batched_fetch_cost(blocks, model)
        )
        assert stats["elapsed"] == pytest.approx(
            stats["seeks"] * model.t_seek
            + stats["blocks_read"] * model.t_xfer
        )

    def test_counts_overread(self):
        model = DiskModel(t_seek=0.010, t_xfer=0.001)
        stats = batched_fetch_stats([0, 3], model)
        assert stats["seeks"] == 1
        assert stats["blocks_read"] == 4
        assert stats["blocks_overread"] == 2

    def test_empty(self):
        model = DiskModel(t_seek=0.010, t_xfer=0.001)
        stats = batched_fetch_stats([], model)
        assert stats == {
            "seeks": 0,
            "blocks_read": 0,
            "blocks_overread": 0,
            "elapsed": 0.0,
        }


class TestBatchedFetchCost:
    def test_extremes_match_paper(self):
        """n large relative to N -> one scan; n small -> random reads."""
        model = DiskModel(t_seek=0.010, t_xfer=0.001)
        # Dense selection: the cost equals one seek + contiguous read.
        dense = list(range(0, 100, 2))
        cost = batched_fetch_cost(dense, model)
        assert cost == pytest.approx(model.t_seek + 99 * model.t_xfer)
        # Sparse selection: every block pays its own seek.
        sparse = [0, 100, 200]
        cost = batched_fetch_cost(sparse, model)
        assert cost == pytest.approx(3 * (model.t_seek + model.t_xfer))

    def test_never_worse_than_naive_random(self):
        model = DiskModel(t_seek=0.010, t_xfer=0.001)
        blocks = [0, 5, 9, 40, 44, 90]
        optimal = batched_fetch_cost(blocks, model)
        naive = model.random_read_time(len(blocks))
        assert optimal <= naive + 1e-12

    def test_never_worse_than_full_scan(self):
        model = DiskModel(t_seek=0.010, t_xfer=0.001)
        blocks = list(range(0, 200, 3))
        optimal = batched_fetch_cost(blocks, model)
        scan = model.scan_time(blocks[-1] + 1)
        assert optimal <= scan + 1e-12


class TestCostBalanceWindow:
    def _model(self):
        return DiskModel(t_seek=0.010, t_xfer=0.001)

    def test_pivot_only_when_neighbors_improbable(self):
        first, last = cost_balance_window(
            5, 11, lambda i: 0.0, self._model()
        )
        assert (first, last) == (5, 5)

    def test_expands_over_certain_neighbors(self):
        # Neighboring blocks with probability 1 are always worth
        # pre-reading (balance = t_xfer - (t_seek + t_xfer) < 0).
        first, last = cost_balance_window(
            5, 11, lambda i: 1.0, self._model()
        )
        assert (first, last) == (0, 10)

    def test_probability_threshold(self):
        # Balance is negative iff l > t_xfer / (t_seek + t_xfer) ~ 0.0909.
        model = self._model()
        threshold = model.t_xfer / (model.t_seek + model.t_xfer)
        first, last = cost_balance_window(
            5, 11, lambda i: threshold * 1.5, model
        )
        assert (first, last) == (0, 10)
        first, last = cost_balance_window(
            5, 11, lambda i: threshold * 0.5, model
        )
        assert (first, last) == (5, 5)

    def test_bridges_low_probability_gap(self):
        # A certain block 3 positions away should be bridged: the gap's
        # cumulated positive balance stays below the seek cost.
        probs = {8: 1.0}
        first, last = cost_balance_window(
            5, 12, lambda i: probs.get(i, 0.0), self._model()
        )
        assert last == 8
        assert first == 5

    def test_stops_at_cumulated_seek_cost(self):
        # With zero probabilities the scan gives up after t_seek/t_xfer
        # blocks; a certain block beyond that horizon is not reached.
        probs = {30: 1.0}
        first, last = cost_balance_window(
            5, 40, lambda i: probs.get(i, 0.0), self._model()
        )
        assert last == 5

    def test_clipped_to_file(self):
        first, last = cost_balance_window(
            0, 3, lambda i: 1.0, self._model()
        )
        assert (first, last) == (0, 2)

    def test_backward_extension(self):
        probs = {3: 1.0, 4: 1.0}
        first, last = cost_balance_window(
            5, 10, lambda i: probs.get(i, 0.0), self._model()
        )
        assert first == 3

    def test_balance_exactly_at_seek_cost_stops(self):
        # 10 zero-probability blocks accumulate a cumulated balance of
        # exactly t_seek (10 * t_xfer = 0.010); the scan must give up
        # there, and the certain block just beyond has a cumulated
        # balance of exactly zero -- not strictly negative, so
        # excluding it is correct.
        model = self._model()
        assert model.t_seek == pytest.approx(10 * model.t_xfer)
        probs = {16: 1.0}
        first, last = cost_balance_window(
            5, 40, lambda i: probs.get(i, 0.0), model
        )
        assert last == 5
        assert first == 5

    def test_balance_just_below_seek_cost_continues(self):
        # 9 zero-probability blocks leave the balance at 0.009 <
        # t_seek, so the certain block at distance 10 is still seen and
        # its strictly negative cumulated balance (-0.001) accepts it.
        model = self._model()
        probs = {15: 1.0}
        first, last = cost_balance_window(
            5, 40, lambda i: probs.get(i, 0.0), model
        )
        assert last == 15

    def test_probability_exactly_one_accepts_every_scanned_block(self):
        # l_i = 1.0 makes each block's balance -t_seek: the window must
        # extend to the file edge in both directions, never skipping a
        # block (each inclusion is strictly negative cumulated).
        model = self._model()
        first, last = cost_balance_window(17, 35, lambda i: 1.0, model)
        assert (first, last) == (0, 34)

    def test_pivot_at_file_start(self):
        model = self._model()
        first, last = cost_balance_window(0, 20, lambda i: 1.0, model)
        assert (first, last) == (0, 19)
        first, last = cost_balance_window(0, 20, lambda i: 0.0, model)
        assert (first, last) == (0, 0)

    def test_pivot_at_file_end(self):
        model = self._model()
        first, last = cost_balance_window(19, 20, lambda i: 1.0, model)
        assert (first, last) == (0, 19)
        first, last = cost_balance_window(19, 20, lambda i: 0.0, model)
        assert (first, last) == (19, 19)

    def test_single_block_file(self):
        first, last = cost_balance_window(
            0, 1, lambda i: 1.0, self._model()
        )
        assert (first, last) == (0, 0)

    def test_never_excludes_strictly_negative_cumulated_balance(self):
        # Invariant: walking outward from the window edge, the first
        # block at which the cumulated balance since the edge turns
        # strictly negative must not exist within the scan horizon --
        # otherwise the window wrongly excluded a profitable extension.
        import random

        model = self._model()
        n = 48
        for seed in range(25):
            rng = random.Random(seed)
            probs = [
                rng.choice([0.0, 0.0, 0.05, 0.2, 0.5, 1.0])
                for _ in range(n)
            ]
            pivot = rng.randrange(n)
            first, last = cost_balance_window(
                pivot, n, lambda i: probs[i], model
            )
            assert 0 <= first <= pivot <= last < n
            for edge, direction in ((last, +1), (first, -1)):
                balance = 0.0
                i = edge + direction
                while 0 <= i < n and balance < model.t_seek:
                    balance += model.t_xfer - probs[i] * (
                        model.t_seek + model.t_xfer
                    )
                    # A strictly negative cumulated balance would mean
                    # extending the window through block i is strictly
                    # cheaper than a later seek -- must be included.
                    assert balance >= 0.0, (seed, pivot, i)
                    i += direction

    def test_invalid_pivot(self):
        with pytest.raises(StorageError):
            cost_balance_window(7, 5, lambda i: 0.0, self._model())

    def test_invalid_probability(self):
        with pytest.raises(StorageError):
            cost_balance_window(0, 5, lambda i: 1.5, self._model())
