"""Tests for the Section 2 page-access strategies."""

import pytest

from repro.exceptions import StorageError
from repro.storage.disk import DiskModel
from repro.storage.scheduler import (
    batched_fetch_cost,
    cost_balance_window,
    plan_batched_fetch,
)


class TestPlanBatchedFetch:
    def test_empty(self):
        assert list(plan_batched_fetch([], 10)) == []

    def test_single_block(self):
        assert list(plan_batched_fetch([7], 10)) == [(7, 1, 1)]

    def test_small_gap_overread(self):
        # Gap of 2 skipped blocks < window 10: read through.
        runs = list(plan_batched_fetch([0, 3], 10))
        assert runs == [(0, 4, 2)]

    def test_large_gap_seeks(self):
        runs = list(plan_batched_fetch([0, 30], 10))
        assert runs == [(0, 1, 1), (30, 1, 1)]

    def test_gap_exactly_at_window_seeks(self):
        # Condition is gap * t_xfer < t_seek, strict: gap == window seeks.
        runs = list(plan_batched_fetch([0, 11], 10))
        assert runs == [(0, 1, 1), (11, 1, 1)]

    def test_gap_just_below_window_overreads(self):
        runs = list(plan_batched_fetch([0, 10], 10))
        assert runs == [(0, 11, 2)]

    def test_adjacent_blocks_merge(self):
        runs = list(plan_batched_fetch([4, 5, 6], 0))
        assert runs == [(4, 3, 3)]

    def test_mixed_pattern(self):
        runs = list(plan_batched_fetch([0, 2, 40, 41], 10))
        assert runs == [(0, 3, 2), (40, 2, 2)]

    def test_zero_window_never_overreads(self):
        runs = list(plan_batched_fetch([0, 2, 4], 0))
        assert runs == [(0, 1, 1), (2, 1, 1), (4, 1, 1)]

    def test_rejects_unsorted(self):
        with pytest.raises(StorageError):
            list(plan_batched_fetch([3, 1], 10))

    def test_rejects_duplicates(self):
        with pytest.raises(StorageError):
            list(plan_batched_fetch([1, 1], 10))


class TestBatchedFetchCost:
    def test_extremes_match_paper(self):
        """n large relative to N -> one scan; n small -> random reads."""
        model = DiskModel(t_seek=0.010, t_xfer=0.001)
        # Dense selection: the cost equals one seek + contiguous read.
        dense = list(range(0, 100, 2))
        cost = batched_fetch_cost(dense, model)
        assert cost == pytest.approx(model.t_seek + 99 * model.t_xfer)
        # Sparse selection: every block pays its own seek.
        sparse = [0, 100, 200]
        cost = batched_fetch_cost(sparse, model)
        assert cost == pytest.approx(3 * (model.t_seek + model.t_xfer))

    def test_never_worse_than_naive_random(self):
        model = DiskModel(t_seek=0.010, t_xfer=0.001)
        blocks = [0, 5, 9, 40, 44, 90]
        optimal = batched_fetch_cost(blocks, model)
        naive = model.random_read_time(len(blocks))
        assert optimal <= naive + 1e-12

    def test_never_worse_than_full_scan(self):
        model = DiskModel(t_seek=0.010, t_xfer=0.001)
        blocks = list(range(0, 200, 3))
        optimal = batched_fetch_cost(blocks, model)
        scan = model.scan_time(blocks[-1] + 1)
        assert optimal <= scan + 1e-12


class TestCostBalanceWindow:
    def _model(self):
        return DiskModel(t_seek=0.010, t_xfer=0.001)

    def test_pivot_only_when_neighbors_improbable(self):
        first, last = cost_balance_window(
            5, 11, lambda i: 0.0, self._model()
        )
        assert (first, last) == (5, 5)

    def test_expands_over_certain_neighbors(self):
        # Neighboring blocks with probability 1 are always worth
        # pre-reading (balance = t_xfer - (t_seek + t_xfer) < 0).
        first, last = cost_balance_window(
            5, 11, lambda i: 1.0, self._model()
        )
        assert (first, last) == (0, 10)

    def test_probability_threshold(self):
        # Balance is negative iff l > t_xfer / (t_seek + t_xfer) ~ 0.0909.
        model = self._model()
        threshold = model.t_xfer / (model.t_seek + model.t_xfer)
        first, last = cost_balance_window(
            5, 11, lambda i: threshold * 1.5, model
        )
        assert (first, last) == (0, 10)
        first, last = cost_balance_window(
            5, 11, lambda i: threshold * 0.5, model
        )
        assert (first, last) == (5, 5)

    def test_bridges_low_probability_gap(self):
        # A certain block 3 positions away should be bridged: the gap's
        # cumulated positive balance stays below the seek cost.
        probs = {8: 1.0}
        first, last = cost_balance_window(
            5, 12, lambda i: probs.get(i, 0.0), self._model()
        )
        assert last == 8
        assert first == 5

    def test_stops_at_cumulated_seek_cost(self):
        # With zero probabilities the scan gives up after t_seek/t_xfer
        # blocks; a certain block beyond that horizon is not reached.
        probs = {30: 1.0}
        first, last = cost_balance_window(
            5, 40, lambda i: probs.get(i, 0.0), self._model()
        )
        assert last == 5

    def test_clipped_to_file(self):
        first, last = cost_balance_window(
            0, 3, lambda i: 1.0, self._model()
        )
        assert (first, last) == (0, 2)

    def test_backward_extension(self):
        probs = {3: 1.0, 4: 1.0}
        first, last = cost_balance_window(
            5, 10, lambda i: probs.get(i, 0.0), self._model()
        )
        assert first == 3

    def test_invalid_pivot(self):
        with pytest.raises(StorageError):
            cost_balance_window(7, 5, lambda i: 0.0, self._model())

    def test_invalid_probability(self):
        with pytest.raises(StorageError):
            cost_balance_window(0, 5, lambda i: 1.5, self._model())
