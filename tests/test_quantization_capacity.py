"""Tests for the page-capacity arithmetic."""

import pytest

from repro.exceptions import QuantizationError
from repro.quantization.capacity import (
    EXACT_BITS,
    capacity_for_bits,
    max_bits_for_count,
)
from repro.storage.serializer import quantized_page_capacity


class TestCapacityForBits:
    def test_matches_serializer(self):
        for bits in (1, 4, 8, 16, 32):
            assert capacity_for_bits(8192, 16, bits) == (
                quantized_page_capacity(8192, 16, bits)
            )

    def test_too_small_block_rejected(self):
        # A 16-byte block cannot hold one 16-d point at 32 bits.
        with pytest.raises(QuantizationError):
            capacity_for_bits(16, 16, 32)


class TestMaxBitsForCount:
    def test_single_point_gets_exact(self):
        assert max_bits_for_count(8192, 16, 1) == EXACT_BITS

    def test_overfull_returns_zero(self):
        cap1 = capacity_for_bits(8192, 16, 1)
        assert max_bits_for_count(8192, 16, cap1 + 1) == 0

    def test_exactly_full_at_one_bit(self):
        cap1 = capacity_for_bits(8192, 16, 1)
        assert max_bits_for_count(8192, 16, cap1) == 1

    def test_is_finest_fitting_level(self):
        """The returned g fits; g+1 does not (unless already 32)."""
        for count in (1, 10, 100, 500, 2000, 4000):
            bits = max_bits_for_count(8192, 16, count)
            assert bits >= 1
            assert capacity_for_bits(8192, 16, bits) >= count
            if bits < EXACT_BITS:
                assert quantized_page_capacity(8192, 16, bits + 1) < count

    def test_monotone_in_count(self):
        values = [
            max_bits_for_count(8192, 8, c) for c in range(1, 2000, 37)
        ]
        assert all(a >= b for a, b in zip(values, values[1:]))

    def test_invalid_count(self):
        with pytest.raises(QuantizationError):
            max_bits_for_count(8192, 16, 0)

    def test_halving_count_roughly_doubles_bits(self):
        """The split-tree story: each split doubles the bit budget."""
        cap1 = capacity_for_bits(2048, 8, 1)
        bits_full = max_bits_for_count(2048, 8, cap1)
        bits_half = max_bits_for_count(2048, 8, cap1 // 2)
        assert bits_full == 1
        assert bits_half == 2
