"""Tests for the range-query cost/selectivity estimator."""

import numpy as np
import pytest

from repro.exceptions import CostModelError
from repro.core.tree import IQTree
from repro.costmodel.range_model import estimate_range_query
from repro.datasets import make_workload, uniform
from repro.experiments.harness import experiment_disk
from repro.storage.disk import DiskModel


class TestFormulaProperties:
    def _estimate(self, radius, **overrides):
        kwargs = dict(
            radius=radius,
            n_pages=100,
            n_points=50_000,
            dim=8,
            disk=DiskModel(),
        )
        kwargs.update(overrides)
        return estimate_range_query(**kwargs)

    def test_zero_radius(self):
        est = self._estimate(0.0)
        assert est.expected_results == pytest.approx(0.0)
        assert est.expected_time > 0  # directory scan is always paid

    def test_monotone_in_radius(self):
        results, pages, times = [], [], []
        for r in (0.05, 0.1, 0.2, 0.4, 0.8):
            est = self._estimate(r)
            results.append(est.expected_results)
            pages.append(est.expected_pages)
            times.append(est.expected_time)
        assert results == sorted(results)
        assert pages == sorted(pages)
        assert times == sorted(times)

    def test_huge_radius_saturates(self):
        est = self._estimate(10.0)
        assert est.expected_results == pytest.approx(50_000)
        assert est.expected_pages == pytest.approx(100)

    def test_fractal_dim_changes_selectivity(self):
        full = self._estimate(0.2)
        clustered = self._estimate(0.2, fractal_dim=3.0)
        assert clustered.expected_results != pytest.approx(
            full.expected_results
        )

    def test_invalid_inputs(self):
        with pytest.raises(CostModelError):
            self._estimate(-1.0)
        with pytest.raises(CostModelError):
            self._estimate(0.1, n_pages=0)
        with pytest.raises(CostModelError):
            self._estimate(0.1, fractal_dim=99.0)


class TestAgainstMeasurement:
    @pytest.fixture(scope="class")
    def tree_and_queries(self):
        data, queries = make_workload(
            uniform, n=8_000, n_queries=6, seed=0, dim=6
        )
        tree = IQTree.build(
            data, disk=experiment_disk(), fractal_dim=None
        )
        return tree, queries

    def test_selectivity_within_factor(self, tree_and_queries):
        tree, queries = tree_and_queries
        radius = 0.3
        est = tree.estimated_range_query(radius)
        measured = np.mean(
            [tree.range_query(q, radius).ids.size for q in queries]
        )
        # Boundary effects make uniform-space predictions optimistic;
        # an order-of-magnitude agreement is the usable bar.
        assert est.expected_results / 10 < measured + 1
        assert measured < est.expected_results * 10 + 10

    def test_time_within_factor(self, tree_and_queries):
        tree, queries = tree_and_queries
        radius = 0.3
        est = tree.estimated_range_query(radius)
        times = []
        for q in queries:
            tree.disk.park()
            times.append(tree.range_query(q, radius).io.elapsed)
        measured = float(np.mean(times))
        assert est.expected_time / 10 < measured < est.expected_time * 10

    def test_estimates_rank_radii_correctly(self, tree_and_queries):
        """Even where absolute numbers drift, the model must order
        radii by cost -- what an optimizer would use it for."""
        tree, queries = tree_and_queries
        radii = (0.1, 0.3, 0.6)
        predicted = [
            tree.estimated_range_query(r).expected_time for r in radii
        ]
        measured = []
        for r in radii:
            times = []
            for q in queries:
                tree.disk.park()
                times.append(tree.range_query(q, r).io.elapsed)
            measured.append(float(np.mean(times)))
        assert predicted == sorted(predicted)
        assert measured == sorted(measured)


class TestInsertMany:
    def test_batch_insert(self, uniform_points, small_disk, rng):
        tree = IQTree.build(uniform_points[:500], disk=small_disk)
        batch = rng.random((40, 8))
        ids = tree.insert_many(batch)
        assert ids.size == 40
        assert np.array_equal(ids, np.arange(500, 540))
        hit = tree.nearest(batch[7], k=1)
        assert hit.ids[0] == ids[7]

    def test_bad_shape(self, uniform_points, small_disk):
        tree = IQTree.build(uniform_points[:100], disk=small_disk)
        from repro.exceptions import SearchError

        with pytest.raises(SearchError):
            tree.insert_many(np.zeros((3, 5)))
