"""Unit + property tests for the pluggable page codecs.

Covers the PQ codec (deterministic fit, sound conservative bounds,
round-trip through the serializer, loud structural validation of every
corruption class) and the Elias-Fano directory encoding (exact size
prediction, bit-identical round-trips, truncation/corruption errors).
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.exceptions import (
    PageOverflowError,
    QuantizationError,
    StorageError,
)
from repro.geometry.metrics import EUCLIDEAN
from repro.quantization.bitpack import packed_size
from repro.quantization.codecs import (
    CODEC_GRID,
    CODEC_PQ,
    MAX_EFF_BITS,
    PQ_SUBHEADER,
    PQView,
    decode_pq_body,
    effective_bits,
    encode_pq_body,
    fit_pq,
    pq_body_size,
    pq_page_fits,
    subspace_spans,
)
from repro.quantization.eliasfano import (
    decode_ef_directory,
    decode_ef_list,
    ef_list_size,
    encode_ef_directory,
    encode_ef_list,
)
from repro.storage.serializer import (
    QUANT_PAGE_HEADER,
    decode_quantized_page,
    encode_pq_page,
    encode_quantized_page,
)


def micro_clusters(
    m: int, dim: int, n_clusters: int, seed: int = 0
) -> np.ndarray:
    """Tight clumps -- the regime PQ is built for."""
    rng = np.random.default_rng(seed)
    centers = rng.random((n_clusters, dim))
    pts = centers[rng.integers(0, n_clusters, size=m)]
    pts = pts + rng.normal(0, 0.001, size=(m, dim))
    return np.clip(pts, 0, 1).astype(np.float32).astype(np.float64)


# ----------------------------------------------------------------------
# subspace_spans
# ----------------------------------------------------------------------
class TestSubspaceSpans:
    @pytest.mark.parametrize("dim,n_sub", [(8, 1), (8, 3), (8, 8), (7, 2)])
    def test_partition_properties(self, dim, n_sub):
        spans = subspace_spans(dim, n_sub)
        assert len(spans) == n_sub
        assert spans[0][0] == 0 and spans[-1][1] == dim
        sizes = [b - a for a, b in spans]
        # contiguous, non-empty, sizes differ by at most one
        assert all(s >= 1 for s in sizes)
        assert max(sizes) - min(sizes) <= 1
        for (_, b_prev), (a_next, _) in zip(spans, spans[1:]):
            assert b_prev == a_next

    def test_rejects_bad_counts(self):
        with pytest.raises(QuantizationError):
            subspace_spans(4, 0)
        with pytest.raises(QuantizationError):
            subspace_spans(4, 5)


# ----------------------------------------------------------------------
# fit_pq: determinism + soundness
# ----------------------------------------------------------------------
class TestFitPQ:
    def test_deterministic_same_bytes(self):
        pts = micro_clusters(200, 6, 8, seed=3)
        a_codes, a_lo, a_hi = fit_pq(pts, 2, 4)
        b_codes, b_lo, b_hi = fit_pq(pts.copy(), 2, 4)
        assert a_lo.tobytes() == b_lo.tobytes()
        assert a_hi.tobytes() == b_hi.tobytes()
        assert (a_codes == b_codes).all()
        # the full encoded body is byte-stable too (re-encode contract)
        assert encode_pq_body(pts, 2, 4) == encode_pq_body(pts, 2, 4)

    @pytest.mark.parametrize("n_sub,bits", [(1, 4), (3, 2), (6, 3)])
    def test_bounds_contain_points(self, n_sub, bits):
        pts = micro_clusters(150, 6, 5, seed=7)
        codes, lo32, hi32 = fit_pq(pts, n_sub, bits)
        view = PQView(
            lo32.astype(np.float64), hi32.astype(np.float64), n_sub, 6
        )
        lowers, uppers = view.cell_bounds(codes)
        assert (lowers <= pts + 1e-12).all()
        assert (uppers >= pts - 1e-12).all()

    def test_bounds_sound_for_non_f32_inputs(self):
        # coordinates that are NOT float32-representable: the outward
        # ulp nudge must keep containment through the f32 cast
        rng = np.random.default_rng(11)
        pts = rng.random((80, 4)) * 1e-3 + 1.0 / 3.0
        codes, lo32, hi32 = fit_pq(pts, 2, 3)
        view = PQView(
            lo32.astype(np.float64), hi32.astype(np.float64), 2, 4
        )
        lowers, uppers = view.cell_bounds(codes)
        assert (lowers <= pts).all()
        assert (uppers >= pts).all()

    def test_single_point_page(self):
        pts = np.array([[0.25, 0.5, 0.75]])
        codes, lo32, hi32 = fit_pq(pts, 1, 4)
        # K = min(2^4, 1) = 1
        assert lo32.shape == (1, 3) and hi32.shape == (1, 3)
        assert (codes == 0).all()
        np.testing.assert_array_equal(lo32, hi32)

    def test_input_validation(self):
        pts = micro_clusters(10, 4, 2)
        with pytest.raises(QuantizationError):
            fit_pq(pts, 2, 0)
        with pytest.raises(QuantizationError):
            fit_pq(pts, 2, 17)
        with pytest.raises(QuantizationError):
            fit_pq(pts[0], 1, 4)  # not (m, d)
        with pytest.raises(QuantizationError):
            fit_pq(pts[:0], 1, 4)  # empty


# ----------------------------------------------------------------------
# PQ body / page round-trips
# ----------------------------------------------------------------------
class TestPQRoundTrip:
    @pytest.mark.parametrize("n_sub,bits", [(1, 2), (2, 4), (4, 3)])
    def test_body_roundtrip(self, n_sub, bits):
        pts = micro_clusters(120, 4, 6, seed=1)
        codes, lo32, hi32 = fit_pq(pts, n_sub, bits)
        body = encode_pq_body(pts, n_sub, bits)
        assert len(body) == pq_body_size(120, 4, n_sub, bits)
        got_codes, view = decode_pq_body(body, 120, bits, 4)
        assert (got_codes == codes).all()
        np.testing.assert_array_equal(
            view.box_lo, lo32.astype(np.float64)
        )
        np.testing.assert_array_equal(
            view.box_hi, hi32.astype(np.float64)
        )

    def test_page_roundtrip_via_serializer(self):
        pts = micro_clusters(100, 5, 4, seed=2)
        payload = encode_pq_page(pts, 4, 2, 8192)
        m, bits, codec = QUANT_PAGE_HEADER.unpack_from(payload)
        assert (m, bits, codec) == (100, 4, CODEC_PQ)
        contents, got_bits, ids, aux = decode_quantized_page(payload, 5)
        assert got_bits == 4 and ids is None
        assert isinstance(aux, PQView)
        lowers, uppers = aux.cell_bounds(contents)
        assert (lowers <= pts).all() and (uppers >= pts).all()

    def test_grid_page_has_no_aux(self):
        codes = np.arange(12, dtype=np.uint32).reshape(4, 3) % 8
        payload = encode_quantized_page(codes, 3, 512)
        m, bits, codec = QUANT_PAGE_HEADER.unpack_from(payload)
        assert codec == CODEC_GRID
        contents, got_bits, ids, aux = decode_quantized_page(payload, 3)
        assert aux is None and ids is None
        assert (contents == codes).all()

    def test_pq_mindist_maxdist_bracket_true_distance(self):
        pts = micro_clusters(90, 4, 3, seed=9)
        payload = encode_pq_page(pts, 4, 2, 8192)
        codes, _bits, _ids, view = decode_quantized_page(payload, 4)
        query = np.array([0.5, 0.1, 0.9, 0.3])
        true = EUCLIDEAN.distances(query, pts)
        lo = view.cell_mindist(query, codes)
        hi = view.cell_maxdist(query, codes)
        assert (lo <= true + 1e-9).all()
        assert (hi >= true - 1e-9).all()

    def test_page_overflow_rejected(self):
        pts = micro_clusters(300, 8, 4)
        with pytest.raises(PageOverflowError):
            encode_pq_page(pts, 8, 4, 512)

    def test_pq_page_fits_matches_encoder(self):
        pts = micro_clusters(60, 4, 4)
        for block in (256, 512, 1024, 4096):
            fits = pq_page_fits(60, 4, 2, 4, block)
            if fits:
                assert len(encode_pq_page(pts, 4, 2, block)) <= block
            else:
                with pytest.raises(PageOverflowError):
                    encode_pq_page(pts, 4, 2, block)


# ----------------------------------------------------------------------
# structural validation: corruption is loud, never a wrong answer
# ----------------------------------------------------------------------
def pq_parts(pts, n_sub, bits):
    body = encode_pq_body(pts, n_sub, bits)
    m = pts.shape[0]
    k = min(1 << bits, m)
    cb_bytes = 2 * k * pts.shape[1] * 4
    return body, k, cb_bytes


class TestPQCorruption:
    pts = micro_clusters(64, 4, 4, seed=5)

    def test_truncated_subheader(self):
        body = encode_pq_body(self.pts, 2, 4)
        with pytest.raises(StorageError, match="subheader"):
            decode_pq_body(body[:2], 64, 4, 4)

    def test_truncated_body(self):
        body = encode_pq_body(self.pts, 2, 4)
        with pytest.raises(StorageError, match="truncated"):
            decode_pq_body(body[:-4], 64, 4, 4)

    def test_bad_subspace_count(self):
        body, k, _ = pq_parts(self.pts, 2, 4)
        bad = PQ_SUBHEADER.pack(9, 0, k) + body[PQ_SUBHEADER.size :]
        with pytest.raises(StorageError, match="subspace count"):
            decode_pq_body(bad, 64, 4, 4)

    def test_bad_cluster_count(self):
        body, _k, _ = pq_parts(self.pts, 2, 4)
        bad = PQ_SUBHEADER.pack(2, 0, 500) + body[PQ_SUBHEADER.size :]
        with pytest.raises(StorageError, match="cluster count"):
            decode_pq_body(bad, 64, 4, 4)

    def test_bad_bits(self):
        body = encode_pq_body(self.pts, 2, 4)
        with pytest.raises(StorageError, match="code width"):
            decode_pq_body(body, 64, 0, 4)

    def test_code_past_k(self):
        # K < 2^bits leaves representable-but-invalid code values
        pts = self.pts[:10]  # K = min(2^4, 10) = 10 < 16
        body = encode_pq_body(pts, 1, 4)
        k = 10
        cb_bytes = 2 * k * 4 * 4
        codes_off = PQ_SUBHEADER.size + cb_bytes
        corrupt = bytearray(body)
        corrupt[codes_off] = 0xFF  # two 4-bit codes = 15 >= K
        with pytest.raises(StorageError, match="cluster >= K"):
            decode_pq_body(bytes(corrupt), 10, 4, 4)

    def test_non_finite_codebook(self):
        body, _k, _ = pq_parts(self.pts, 2, 4)
        corrupt = bytearray(body)
        struct.pack_into("<f", corrupt, PQ_SUBHEADER.size, float("nan"))
        with pytest.raises(StorageError, match="non-finite"):
            decode_pq_body(bytes(corrupt), 64, 4, 4)

    def test_inverted_box(self):
        body, k, _cb = pq_parts(self.pts, 2, 4)
        corrupt = bytearray(body)
        # overwrite the first lower bound with a huge value > upper
        struct.pack_into("<f", corrupt, PQ_SUBHEADER.size, 1e30)
        with pytest.raises(StorageError, match="inverted"):
            decode_pq_body(bytes(corrupt), 64, 4, 4)

    def test_unknown_page_codec_id(self):
        payload = bytearray(
            encode_quantized_page(
                np.zeros((2, 2), dtype=np.uint32), 4, 512
            )
        )
        payload[5] = 7  # codec byte
        with pytest.raises(StorageError, match="unknown page codec"):
            decode_quantized_page(bytes(payload), 2)


# ----------------------------------------------------------------------
# effective_bits
# ----------------------------------------------------------------------
class TestEffectiveBits:
    def build_view(self, pts, n_sub, bits):
        codes, lo32, hi32 = fit_pq(pts, n_sub, bits)
        view = PQView(
            lo32.astype(np.float64),
            hi32.astype(np.float64),
            n_sub,
            pts.shape[1],
        )
        return codes, view

    def test_clustered_page_beats_its_code_width(self):
        # tight clumps inside a wide MBR: few PQ bits buy many
        # grid-equivalent bits of resolution
        pts = micro_clusters(200, 4, 8, seed=13)
        codes, view = self.build_view(pts, 4, 3)
        extents = pts.max(axis=0) - pts.min(axis=0)
        eff = effective_bits(extents, codes, view)
        assert isinstance(eff, float)
        assert eff > 3.0

    def test_clamped_to_valid_model_range(self):
        pts = micro_clusters(50, 3, 2, seed=17)
        codes, view = self.build_view(pts, 1, 2)
        extents = pts.max(axis=0) - pts.min(axis=0)
        eff = effective_bits(extents, codes, view)
        assert 1.0 <= eff <= MAX_EFF_BITS
        # degenerate MBR (all sides zero) -> exact-level ceiling
        assert (
            effective_bits(np.zeros(3), codes, view) == MAX_EFF_BITS
        )

    def test_duplicate_points_hit_ceiling(self):
        pts = np.tile(np.array([[0.25, 0.5]]), (20, 1))
        codes, view = self.build_view(pts, 1, 2)
        eff = effective_bits(np.array([0.5, 0.5]), codes, view)
        assert eff == MAX_EFF_BITS


# ----------------------------------------------------------------------
# Elias-Fano lists
# ----------------------------------------------------------------------
class TestEliasFanoList:
    @pytest.mark.parametrize(
        "values",
        [
            [],
            [0],
            [0, 0, 0],
            [1, 2, 3, 4, 5],
            [0, 0, 5, 5, 1000000],
            [7, 3, 9, 0, 2],  # non-monotone -> cumsum mode
            list(range(0, 5000, 7)),
        ],
        ids=[
            "empty",
            "single",
            "zeros",
            "monotone",
            "big-universe",
            "cumsum",
            "long",
        ],
    )
    def test_roundtrip(self, values):
        arr = np.asarray(values, dtype=np.int64)
        blob = encode_ef_list(arr)
        got, cursor = decode_ef_list(blob)
        np.testing.assert_array_equal(got, arr)
        assert cursor == len(blob)

    def test_size_prediction_exact(self):
        rng = np.random.default_rng(23)
        for _ in range(20):
            n = int(rng.integers(0, 200))
            arr = rng.integers(0, 10000, size=n).astype(np.int64)
            if rng.random() < 0.5:
                arr.sort()
            assert ef_list_size(arr) == len(encode_ef_list(arr))

    def test_self_delimiting_concatenation(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([9, 4, 7], dtype=np.int64)
        blob = encode_ef_list(a) + encode_ef_list(b)
        got_a, cursor = decode_ef_list(blob)
        got_b, end = decode_ef_list(blob, cursor)
        np.testing.assert_array_equal(got_a, a)
        np.testing.assert_array_equal(got_b, b)
        assert end == len(blob)

    def test_rejects_negative_and_2d(self):
        with pytest.raises(StorageError, match="non-negative"):
            encode_ef_list(np.array([3, -1]))
        with pytest.raises(StorageError, match="one-dimensional"):
            encode_ef_list(np.zeros((2, 2), dtype=np.int64))

    def test_truncated_header(self):
        with pytest.raises(StorageError, match="header truncated"):
            decode_ef_list(b"\x00\x01\x02")

    def test_truncated_body(self):
        blob = encode_ef_list(np.arange(100, dtype=np.int64) * 13)
        with pytest.raises(StorageError, match="body truncated"):
            decode_ef_list(blob[:-3])

    def test_unknown_mode(self):
        blob = bytearray(encode_ef_list(np.array([1, 2, 3])))
        blob[9] = 5  # mode byte of <IIBBxx
        with pytest.raises(StorageError, match="unknown Elias-Fano mode"):
            decode_ef_list(bytes(blob))

    def test_bitmap_with_too_few_bits(self):
        blob = bytearray(encode_ef_list(np.array([0, 1, 2, 3])))
        # zero out the upper bitmap: fewer set bits than n
        for i in range(12, len(blob)):
            blob[i] = 0
        with pytest.raises(StorageError, match="too few set bits"):
            decode_ef_list(bytes(blob))


# ----------------------------------------------------------------------
# Elias-Fano directory blocks
# ----------------------------------------------------------------------
def make_directory(n: int, dim: int, seed: int = 0):
    rng = np.random.default_rng(seed)
    lowers = rng.random((n, dim)).astype(np.float32).astype(np.float64)
    uppers = lowers + rng.random((n, dim)).astype(np.float32)
    uppers = uppers.astype(np.float32).astype(np.float64)
    quant_pages = np.arange(n, dtype=np.int64)
    exact_counts = rng.integers(1, 5, size=n).astype(np.int64)
    exact_firsts = np.concatenate(
        ([0], np.cumsum(exact_counts)[:-1])
    ).astype(np.int64)
    point_counts = rng.integers(1, 400, size=n).astype(np.int64)
    return (
        lowers,
        uppers,
        quant_pages,
        exact_firsts,
        exact_counts,
        point_counts,
    )


class TestEliasFanoDirectory:
    @pytest.mark.parametrize("n,dim", [(1, 4), (37, 8), (500, 16)])
    def test_roundtrip_bit_identical(self, n, dim):
        cols = make_directory(n, dim, seed=n)
        blocks = encode_ef_directory(*cols, block_size=4096)
        assert all(len(b) <= 4096 for b in blocks)
        out = decode_ef_directory(blocks, dim, n)
        np.testing.assert_array_equal(out["lowers"], cols[0])
        np.testing.assert_array_equal(out["uppers"], cols[1])
        np.testing.assert_array_equal(out["quant_pages"], cols[2])
        np.testing.assert_array_equal(out["exact_firsts"], cols[3])
        np.testing.assert_array_equal(out["exact_counts"], cols[4])
        np.testing.assert_array_equal(out["point_counts"], cols[5])

    def test_fewer_blocks_than_dense(self):
        from repro.storage.serializer import directory_entry_size

        n, dim, block = 500, 16, 4096
        cols = make_directory(n, dim, seed=42)
        blocks = encode_ef_directory(*cols, block_size=block)
        per_block_dense = block // directory_entry_size(dim)
        dense_blocks = -(-n // per_block_dense)
        assert len(blocks) < dense_blocks

    def test_entry_larger_than_block_rejected(self):
        cols = make_directory(4, 64, seed=1)
        with pytest.raises(StorageError, match="larger than a block"):
            encode_ef_directory(*cols, block_size=256)

    def test_truncated_block_stream(self):
        cols = make_directory(80, 8, seed=3)
        blocks = encode_ef_directory(*cols, block_size=1024)
        assert len(blocks) > 1
        with pytest.raises(StorageError, match="truncated"):
            decode_ef_directory(blocks[:-1], 8, 80)

    def test_corrupt_block_header(self):
        cols = make_directory(20, 4, seed=4)
        blocks = encode_ef_directory(*cols, block_size=2048)
        bad = bytearray(blocks[0])
        struct.pack_into("<H", bad, 0, 0xFFFF)  # absurd entry count
        with pytest.raises(StorageError):
            decode_ef_directory([bytes(bad)], 4, 20)

    def test_mismatched_columns_rejected(self):
        cols = list(make_directory(10, 4))
        cols[2] = cols[2][:5]  # short quant_pages column
        with pytest.raises(StorageError, match="must be"):
            encode_ef_directory(*cols, block_size=2048)
