"""Tests for incremental distance browsing and the batch/cost APIs."""

import itertools

import numpy as np
import pytest

from repro.exceptions import SearchError
from repro.core.tree import IQTree
from repro.geometry.metrics import EUCLIDEAN


@pytest.fixture
def tree(uniform_points, small_disk):
    return IQTree.build(uniform_points[:800], disk=small_disk)


class TestBrowse:
    def test_full_ranking_matches_sort(self, tree, rng):
        q = rng.random(8)
        ranked = list(tree.browse(q))
        assert len(ranked) == tree.n_points
        dists = np.array([d for _i, d in ranked])
        assert np.all(np.diff(dists) >= -1e-12)
        expected = np.sort(EUCLIDEAN.distances(q, tree.points))
        assert np.allclose(dists, expected)
        assert len({i for i, _d in ranked}) == tree.n_points

    def test_prefix_matches_knn(self, tree, rng):
        q = rng.random(8)
        first = list(itertools.islice(tree.browse(q), 10))
        knn = tree.nearest(q, k=10)
        assert np.allclose([d for _i, d in first], knn.distances)

    def test_lazy_io(self, tree, rng):
        """Stopping early must cost less than ranking everything."""
        q = rng.random(8)
        tree.disk.park()
        before = tree.disk.stats.elapsed
        next(iter(tree.browse(q)))
        cost_one = tree.disk.stats.elapsed - before
        tree.disk.park()
        before = tree.disk.stats.elapsed
        list(tree.browse(q))
        cost_all = tree.disk.stats.elapsed - before
        assert cost_one < cost_all

    def test_bad_query_shape(self, tree):
        with pytest.raises(SearchError):
            next(iter(tree.browse(np.zeros(3))))

    def test_browse_on_exact_tree(self, uniform_points, small_disk):
        tree = IQTree.build(
            uniform_points[:300], disk=small_disk, optimize=False
        )
        q = np.full(8, 0.5)
        ranked = list(itertools.islice(tree.browse(q), 5))
        expected = np.sort(EUCLIDEAN.distances(q, tree.points))[:5]
        assert np.allclose([d for _i, d in ranked], expected)


class TestBatch:
    def test_batch_matches_individual(self, tree, rng):
        queries = rng.random((4, 8))
        batch = tree.nearest_batch(queries, k=2)
        for q, res in zip(queries, batch):
            solo = tree.nearest(q, k=2)
            assert np.array_equal(res.ids, solo.ids)

    def test_batch_shape_validation(self, tree):
        with pytest.raises(SearchError):
            tree.nearest_batch(np.zeros(8))


class TestEstimatedCost:
    def test_breakdown_positive_and_consistent(self, tree):
        est = tree.estimated_query_cost()
        assert est.first_level > 0
        assert est.second_level > 0
        assert est.refinement >= 0
        assert est.total == pytest.approx(
            est.first_level + est.second_level + est.refinement
        )

    def test_prediction_in_range_of_measurement(self, tree, rng):
        """Model predictions should land within an order of magnitude
        of measured simulated time on well-behaved uniform data."""
        est = tree.estimated_query_cost().total
        times = []
        for _ in range(10):
            q = rng.random(8)
            tree.disk.park()
            times.append(tree.nearest(q).io.elapsed)
        measured = float(np.mean(times))
        assert est / 10 < measured < est * 10

    def test_estimate_is_what_optimizer_minimized(self, tree):
        assert tree.trace is not None
        assert tree.estimated_query_cost().total == pytest.approx(
            min(tree.trace.costs), rel=1e-6
        )
