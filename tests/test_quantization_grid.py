"""Tests for the per-MBR grid quantizer."""

import numpy as np
import pytest

from repro.exceptions import QuantizationError
from repro.geometry.mbr import MBR
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM
from repro.quantization.grid import GridQuantizer


@pytest.fixture
def box():
    return MBR([0.0, 10.0], [1.0, 20.0])


class TestEncode:
    def test_codes_in_range(self, box, rng):
        q = GridQuantizer(box, bits=3)
        pts = np.column_stack(
            [rng.random(100), 10 + 10 * rng.random(100)]
        )
        codes = q.encode(pts)
        assert codes.dtype == np.uint32
        assert codes.max() < 8

    def test_lower_corner_is_cell_zero(self, box):
        q = GridQuantizer(box, bits=4)
        codes = q.encode(np.array([[0.0, 10.0]]))
        assert np.array_equal(codes, [[0, 0]])

    def test_upper_boundary_clamps_to_last_cell(self, box):
        q = GridQuantizer(box, bits=4)
        codes = q.encode(np.array([[1.0, 20.0]]))
        assert np.array_equal(codes, [[15, 15]])

    def test_outside_point_rejected(self, box):
        q = GridQuantizer(box, bits=2)
        with pytest.raises(QuantizationError):
            q.encode(np.array([[2.0, 15.0]]))

    def test_wrong_dim_rejected(self, box):
        q = GridQuantizer(box, bits=2)
        with pytest.raises(QuantizationError):
            q.encode(np.zeros((3, 3)))

    def test_bits_out_of_range(self, box):
        with pytest.raises(QuantizationError):
            GridQuantizer(box, bits=0)
        with pytest.raises(QuantizationError):
            GridQuantizer(box, bits=32)


class TestCellBounds:
    def test_cell_contains_its_point(self, box, rng):
        q = GridQuantizer(box, bits=5)
        pts = np.column_stack([rng.random(200), 10 + 10 * rng.random(200)])
        codes = q.encode(pts)
        lowers, uppers = q.cell_bounds(codes)
        assert np.all(pts >= lowers - 1e-9)
        assert np.all(pts <= uppers + 1e-9)

    def test_cells_inside_mbr(self, box, rng):
        q = GridQuantizer(box, bits=2)
        pts = np.column_stack([rng.random(50), 10 + 10 * rng.random(50)])
        lowers, uppers = q.cell_bounds(q.encode(pts))
        assert np.all(lowers >= box.lower - 1e-9)
        assert np.all(uppers <= box.upper + 1e-9)

    def test_cell_width_halves_per_bit(self, box):
        w1 = GridQuantizer(box, bits=1).cell_widths
        w2 = GridQuantizer(box, bits=2).cell_widths
        assert np.allclose(w1, 2 * w2)

    def test_decode_centers_error_bounded(self, box, rng):
        q = GridQuantizer(box, bits=6)
        pts = np.column_stack([rng.random(100), 10 + 10 * rng.random(100)])
        centers = q.decode_centers(q.encode(pts))
        max_err = q.max_quantization_error()
        errs = EUCLIDEAN.lengths(pts - centers)
        assert np.all(errs <= max_err + 1e-9)

    def test_degenerate_dimension(self):
        box = MBR([0.0, 5.0], [1.0, 5.0])  # second dim has zero extent
        q = GridQuantizer(box, bits=3)
        pts = np.array([[0.3, 5.0], [0.9, 5.0]])
        codes = q.encode(pts)
        assert np.all(codes[:, 1] == 0)
        lowers, uppers = q.cell_bounds(codes)
        assert np.all(lowers[:, 1] == 5.0)
        assert np.all(uppers[:, 1] == 5.0)
        assert q.cell_widths[1] == 0.0


class TestDistanceBounds:
    @pytest.mark.parametrize("metric", [EUCLIDEAN, MAXIMUM])
    def test_bounds_bracket_true_distance(self, box, rng, metric):
        q = GridQuantizer(box, bits=4)
        pts = np.column_stack([rng.random(150), 10 + 10 * rng.random(150)])
        codes = q.encode(pts)
        query = np.array([0.5, 12.0])
        lower = q.cell_mindist(query, codes, metric)
        upper = q.cell_maxdist(query, codes, metric)
        true = metric.distances(query, pts)
        assert np.all(lower <= true + 1e-9)
        assert np.all(true <= upper + 1e-9)

    def test_bounds_tighten_with_bits(self, box, rng):
        pts = np.column_stack([rng.random(100), 10 + 10 * rng.random(100)])
        query = np.array([1.5, 25.0])  # outside the box
        gaps = []
        for bits in (1, 3, 6):
            q = GridQuantizer(box, bits=bits)
            codes = q.encode(pts)
            gap = q.cell_maxdist(query, codes) - q.cell_mindist(query, codes)
            gaps.append(gap.mean())
        assert gaps[0] > gaps[1] > gaps[2]

    def test_query_inside_cell_has_zero_mindist(self, box):
        q = GridQuantizer(box, bits=1)
        pts = np.array([[0.2, 12.0]])
        codes = q.encode(pts)
        query = np.array([0.1, 11.0])  # same (0,0) cell
        assert q.cell_mindist(query, codes)[0] == 0.0

    def test_max_quantization_error_formula(self, box):
        q = GridQuantizer(box, bits=2)
        # Cell widths are (0.25, 2.5); half-diagonal is the max error.
        expected = np.sqrt(0.125**2 + 1.25**2)
        assert q.max_quantization_error() == pytest.approx(expected)
