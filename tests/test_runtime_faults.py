"""Read-path fault injection, retry/quarantine, and degraded queries.

Everything here is deterministic: faults are keyed on exact
``(address, attempt)`` pairs, so each scenario replays bit-identically.
The tree-level tests follow the chaos CLI's discipline -- observe which
addresses a pristine workload touches, then aim scheduled faults at
them -- and assert the degraded-result contract from
``docs/robustness.md``.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.search import locate_address
from repro.core.tree import IQTree
from repro.exceptions import (
    IntegrityError,
    PersistentReadError,
    QueryDataError,
    StorageError,
    TransientReadError,
)
from repro.storage.blockfile import BlockFile
from repro.storage.cache import BufferPool
from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.faults import corrupt_bytes
from repro.storage.runtime_faults import (
    FaultContext,
    QuarantineList,
    ReadFaultInjector,
    RetryPolicy,
    fetch_with_quarantine,
)
from repro.storage.scheduler import cost_balance_window, plan_batched_fetch


@pytest.fixture
def disk():
    return SimulatedDisk(DiskModel(t_seek=0.01, t_xfer=0.001, block_size=64))


@pytest.fixture
def blockfile(disk):
    f = BlockFile(disk)
    for i in range(16):
        f.append_block(bytes([i]) * 8)
    f.seal()
    return f


def faulted_tree(points, *, bits=4):
    """A quantized tree on its own small disk (own injector slot)."""
    disk = SimulatedDisk(
        DiskModel(t_seek=0.010, t_xfer=0.001, block_size=512)
    )
    return IQTree.build(points, disk=disk, optimize=False, fixed_bits=bits)


def observed_address(tree, level, query, k=3):
    """First disk address of ``level`` a pristine query actually reads."""
    observer = ReadFaultInjector()
    tree.disk.install_fault_injector(observer)
    tree.nearest(query, k=k)
    tree.disk.clear_fault_injector()
    for address in sorted(observer.attempts_seen):
        if locate_address(tree, address)[0] == level:
            return address
    raise AssertionError(f"query never read the {level} level")


class TestCorruptBytes:
    def test_deterministic_and_detectable(self):
        payload = b"hello world"
        assert corrupt_bytes(payload, 3) == corrupt_bytes(payload, 3)
        assert corrupt_bytes(payload, 3) != payload
        assert len(corrupt_bytes(payload, 3)) == len(payload)

    def test_empty_payload_still_corrupts(self):
        assert corrupt_bytes(b"") != b""


class TestReadFaultInjector:
    def test_fires_on_exact_attempt_only(self):
        inj = ReadFaultInjector()
        inj.schedule(7, "transient", attempts=(1,))
        assert inj.filter_read(7, b"x") == b"x"  # attempt 0 clean
        with pytest.raises(TransientReadError) as err:
            inj.filter_read(7, b"x")  # attempt 1 fires
        assert err.value.address == 7 and err.value.attempt == 1
        assert inj.filter_read(7, b"x") == b"x"  # attempt 2 clean
        assert inj.fired == [(7, 1, "transient")]

    def test_per_attempt_beats_always(self):
        inj = ReadFaultInjector()
        inj.fail_always(3)
        inj.schedule(3, "transient", attempts=(0,))
        with pytest.raises(TransientReadError):
            inj.filter_read(3, b"x")
        with pytest.raises(PersistentReadError):
            inj.filter_read(3, b"x")

    def test_corruption_returns_mutated_bytes(self):
        inj = ReadFaultInjector()
        inj.corrupt_once(2)
        assert inj.filter_read(2, b"abcd") != b"abcd"
        assert inj.filter_read(2, b"abcd") == b"abcd"

    def test_observer_mode_counts_without_firing(self):
        inj = ReadFaultInjector()
        assert inj.filter_read(5, b"p") == b"p"
        assert inj.filter_read(5, b"p") == b"p"
        assert inj.attempts_seen == {5: 2}
        assert inj.fired == []

    def test_unknown_kind_rejected(self):
        inj = ReadFaultInjector()
        with pytest.raises(StorageError):
            inj.schedule(0, "cosmic-ray")
        with pytest.raises(StorageError):
            inj.schedule(0, "transient", attempts=(-1,))


class TestCRCSidecar:
    def test_corruption_surfaces_as_integrity_error(self, blockfile, disk):
        inj = ReadFaultInjector()
        address = blockfile.extent_start + 4
        inj.corrupt_once(address)
        disk.install_fault_injector(inj)
        with pytest.raises(IntegrityError) as err:
            blockfile.read_block(4)
        assert err.value.block == address
        # The damage was in flight, not at rest: a re-read is clean.
        assert blockfile.read_block(4) == bytes([4]) * 8

    def test_observer_injector_delivers_pristine_payloads(
        self, blockfile, disk
    ):
        plain = [blockfile.read_block(i) for i in range(16)]
        disk.install_fault_injector(ReadFaultInjector())
        assert [blockfile.read_block(i) for i in range(16)] == plain
        run = blockfile.read_run(2, 5)
        assert run == plain[2:7]

    def test_corruption_in_batched_read(self, blockfile, disk):
        inj = ReadFaultInjector()
        inj.corrupt_once(blockfile.extent_start + 9)
        disk.install_fault_injector(inj)
        with pytest.raises(IntegrityError):
            blockfile.read_batched([8, 9, 10])


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(StorageError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(StorageError):
            RetryPolicy(backoff_seeks=-1)

    def test_backoff_charged_as_seeks(self, blockfile, disk):
        inj = ReadFaultInjector()
        inj.fail_once(blockfile.extent_start + 6)
        disk.install_fault_injector(inj)
        ctx = FaultContext(RetryPolicy(max_attempts=3, backoff_seeks=5))
        disk.park()
        before = disk.stats.seeks
        payload = ctx.run(lambda: blockfile.read_block(6), disk)
        assert payload == bytes([6]) * 8
        # 1 seek for the failed read, 5 backoff seeks, 1 for the retry
        # (backoff parks the head, so the retry seeks again).
        assert disk.stats.seeks - before == 7
        assert ctx.retries == 1
        assert len(ctx.quarantine) == 0

    def test_exhaustion_poisons_and_reraises(self, blockfile, disk):
        inj = ReadFaultInjector()
        address = blockfile.extent_start + 2
        inj.schedule(address, "transient", attempts=(0, 1, 2))
        disk.install_fault_injector(inj)
        ctx = FaultContext(RetryPolicy(max_attempts=3))
        with pytest.raises(TransientReadError):
            ctx.run(lambda: blockfile.read_block(2), disk)
        assert address in ctx.quarantine
        assert ctx.retries == 2

    def test_persistent_fault_poisons_immediately(self, blockfile, disk):
        inj = ReadFaultInjector()
        address = blockfile.extent_start + 3
        inj.fail_always(address)
        disk.install_fault_injector(inj)
        pool = BufferPool(8)
        pool.admit(address)
        ctx = FaultContext(pool=pool)
        with pytest.raises(PersistentReadError):
            ctx.run(lambda: blockfile.read_block(3), disk)
        assert ctx.retries == 0  # no futile retries
        assert address in ctx.quarantine
        assert not pool.peek(address)  # evicted, not servable

    def test_container_integrity_error_passes_through(self, disk):
        ctx = FaultContext()

        def container_fault():
            raise IntegrityError("bad header", section="header")

        with pytest.raises(IntegrityError):
            ctx.run(container_fault, disk)
        assert len(ctx.quarantine) == 0


class TestSchedulerExclusion:
    def test_runs_split_around_forbidden_gap(self):
        # Window large enough to merge 0..4 into one run; forbidding
        # the gap block 2 must split the fetch instead.
        merged = list(plan_batched_fetch([0, 1, 3, 4], 10))
        assert merged == [(0, 5, 4)]
        split = list(plan_batched_fetch([0, 1, 3, 4], 10, forbidden={2}))
        assert split == [(0, 2, 2), (3, 2, 2)]

    def test_wanted_forbidden_block_rejected(self):
        with pytest.raises(StorageError):
            list(plan_batched_fetch([1, 2], 4, forbidden={2}))

    def test_window_never_covers_forbidden(self):
        model = DiskModel(t_seek=0.01, t_xfer=0.001, block_size=64)
        probs = lambda i: 0.5  # noqa: E731
        first, last = cost_balance_window(10, 20, probs, model)
        assert first <= 9 and last >= 11
        f2, l2 = cost_balance_window(
            10, 20, probs, model, forbidden={9, 11}
        )
        assert (f2, l2) == (10, 10)
        with pytest.raises(StorageError):
            cost_balance_window(10, 20, probs, model, forbidden={10})


class TestQuarantineList:
    def test_local_indices_projects_extents(self, disk):
        f1 = BlockFile(disk)
        f1.append_block(b"a")
        f1.seal()
        f2 = BlockFile(disk)
        for _ in range(4):
            f2.append_block(b"b")
        f2.seal()
        q = QuarantineList()
        q.add(f2.extent_start + 1)
        q.add(f2.extent_start + 3)
        q.add(f1.extent_start)
        assert q.local_indices(f2) == {1, 3}
        assert q.local_indices(f1) == {0}
        assert len(q) == 3


class TestFetchWithQuarantine:
    def test_lost_blocks_reported_rest_delivered(self, blockfile, disk):
        inj = ReadFaultInjector()
        inj.fail_always(blockfile.extent_start + 5)
        disk.install_fault_injector(inj)
        ctx = FaultContext()
        payloads, lost = fetch_with_quarantine(
            blockfile, disk, ctx, [3, 4, 5, 6, 7]
        )
        assert lost == [5]
        assert set(payloads) == {3, 4, 6, 7}
        assert payloads[6] == bytes([6]) * 8

    def test_multiple_dead_blocks_converge(self, blockfile, disk):
        inj = ReadFaultInjector()
        inj.fail_always(blockfile.extent_start + 1)
        inj.fail_always(blockfile.extent_start + 3)
        disk.install_fault_injector(inj)
        ctx = FaultContext()
        payloads, lost = fetch_with_quarantine(
            blockfile, disk, ctx, list(range(6))
        )
        assert lost == [1, 3]
        assert set(payloads) == {0, 2, 4, 5}
        assert ctx.quarantined == 2

    def test_everything_lost_returns_empty(self, blockfile, disk):
        inj = ReadFaultInjector()
        inj.fail_always(blockfile.extent_start + 2)
        disk.install_fault_injector(inj)
        ctx = FaultContext()
        payloads, lost = fetch_with_quarantine(blockfile, disk, ctx, [2])
        assert payloads == {} and lost == [2]


class TestDegradedKNN:
    def test_transient_fault_retries_to_exact_answer(self, uniform_points):
        tree = faulted_tree(uniform_points[:600])
        query = uniform_points[700]
        base = tree.nearest(query, k=5)
        address = observed_address(tree, "quantized", query, k=5)
        inj = ReadFaultInjector()
        inj.fail_once(address)
        tree.disk.install_fault_injector(inj)
        ctx = tree.use_fault_tolerance()
        res = tree.nearest(query, k=5)
        assert not res.degraded
        assert np.array_equal(res.ids, base.ids)
        assert np.allclose(res.distances, base.distances)
        assert ctx.retries >= 1
        assert inj.fired  # the fault really fired

    def test_lost_exact_block_degrades_to_sound_interval(
        self, uniform_points
    ):
        tree = faulted_tree(uniform_points[:600])
        query = uniform_points[701]
        address = observed_address(tree, "exact", query, k=5)
        inj = ReadFaultInjector()
        inj.fail_always(address)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        res = tree.nearest(query, k=5)
        assert res.degraded and res.certain is not None
        assert not res.certain.all()
        for pos, pid in enumerate(res.ids.tolist()):
            true_dist = tree.metric.distance(query, tree.points[pid])
            if res.certain[pos]:
                assert res.distances[pos] == pytest.approx(true_dist)
            else:
                lo, hi = res.intervals[pid]
                assert lo - 1e-9 <= true_dist <= hi + 1e-9
                assert res.distances[pos] == pytest.approx(hi)

    def test_lost_quantized_page_reports_partition(self, uniform_points):
        tree = faulted_tree(uniform_points[:600])
        query = uniform_points[702]
        address = observed_address(tree, "quantized", query, k=5)
        inj = ReadFaultInjector()
        inj.fail_always(address)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        res = tree.nearest(query, k=5)
        assert res.degraded
        assert res.lost_pages
        lost = res.lost_pages[0]
        assert 0 <= lost.page < tree.n_pages
        assert lost.n_points == tree._counts[lost.page]
        assert lost.mindist <= lost.maxdist
        # Surviving results are still exact points.
        for pos, pid in enumerate(res.ids.tolist()):
            if res.certain is None or res.certain[pos]:
                true_dist = tree.metric.distance(query, tree.points[pid])
                assert res.distances[pos] == pytest.approx(true_dist)

    def test_corruption_detected_and_quarantined(self, uniform_points):
        tree = faulted_tree(uniform_points[:600])
        query = uniform_points[703]
        address = observed_address(tree, "exact", query, k=5)
        inj = ReadFaultInjector()
        inj.corrupt_always(address)
        tree.disk.install_fault_injector(inj)
        ctx = tree.use_fault_tolerance()
        res = tree.nearest(query, k=5)  # must not crash or lie
        assert res.degraded
        assert address in ctx.quarantine
        assert ctx.retries >= 1  # CRC mismatches were retried first

    def test_clearing_restores_pristine_behavior(self, uniform_points):
        tree = faulted_tree(uniform_points[:600])
        query = uniform_points[704]
        base = tree.nearest(query, k=5)
        address = observed_address(tree, "quantized", query, k=5)
        inj = ReadFaultInjector()
        inj.fail_always(address)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        assert tree.nearest(query, k=5).degraded
        tree.disk.clear_fault_injector()
        tree.clear_fault_tolerance()
        res = tree.nearest(query, k=5)
        assert not res.degraded
        assert np.array_equal(res.ids, base.ids)

    def test_fault_without_context_raises_query_data_error(
        self, uniform_points
    ):
        tree = faulted_tree(uniform_points[:600])
        query = uniform_points[705]
        address = observed_address(tree, "exact", query, k=5)
        inj = ReadFaultInjector()
        inj.fail_always(address)
        tree.disk.install_fault_injector(inj)
        with pytest.raises(QueryDataError) as err:
            tree.nearest(query, k=5)
        assert err.value.level == "exact"
        assert err.value.block is not None
        assert err.value.query_id is not None
        assert isinstance(err.value.__cause__, PersistentReadError)


class TestDegradedRange:
    def test_lost_page_reported_with_infinite_maxdist(self, uniform_points):
        tree = faulted_tree(uniform_points[:600])
        query = uniform_points[710]
        radius = 0.8
        base = tree.range_query(query, radius)
        address = observed_address(tree, "quantized", query)
        inj = ReadFaultInjector()
        inj.fail_always(address)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        res = tree.range_query(query, radius)
        assert res.degraded and res.lost_pages
        assert all(p.maxdist == float("inf") for p in res.lost_pages)
        assert len(res.ids) <= len(base.ids)

    def test_lost_exact_block_includes_uncertain_members(
        self, uniform_points
    ):
        tree = faulted_tree(uniform_points[:600])
        query = uniform_points[711]
        radius = 0.8
        address = observed_address(tree, "exact", query)
        inj = ReadFaultInjector()
        inj.fail_always(address)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        res = tree.range_query(query, radius)
        assert res.degraded
        assert res.intervals
        for pid, (lo, hi) in res.intervals.items():
            true_dist = tree.metric.distance(query, tree.points[pid])
            assert lo - 1e-9 <= true_dist <= hi + 1e-9
            assert lo <= radius  # cell overlaps the ball


class TestEngineDegraded:
    def test_knn_batch_degrades_and_counts(self, uniform_points):
        tree = faulted_tree(uniform_points[:600])
        queries = uniform_points[700:706]
        engine = tree.query_engine()
        base = engine.knn_batch(queries, k=4)
        address = observed_address(tree, "exact", queries[0], k=4)
        inj = ReadFaultInjector()
        inj.fail_always(address)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        res = engine.knn_batch(queries, k=4)
        assert res.stats.quarantined >= 1
        assert res.stats.degraded
        assert any(r.degraded for r in res.queries)
        assert len(res.queries) == len(base.queries)
        for i, r in enumerate(res.queries):
            for pos, pid in enumerate(r.ids.tolist()):
                true_dist = tree.metric.distance(
                    queries[i], tree.points[pid]
                )
                if r.certain is None or r.certain[pos]:
                    assert r.distances[pos] == pytest.approx(true_dist)
                else:
                    lo, hi = r.intervals[pid]
                    assert lo - 1e-9 <= true_dist <= hi + 1e-9

    def test_knn_batch_lost_page_reported(self, uniform_points):
        tree = faulted_tree(uniform_points[:600])
        queries = uniform_points[706:710]
        engine = tree.query_engine()
        address = observed_address(tree, "quantized", queries[0], k=4)
        inj = ReadFaultInjector()
        inj.fail_always(address)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        res = engine.knn_batch(queries, k=4)
        assert res.stats.lost_pages >= 1
        assert any(r.lost_pages for r in res.queries)

    def test_range_batch_matches_single_query_degradation(
        self, uniform_points
    ):
        tree = faulted_tree(uniform_points[:600])
        queries = uniform_points[712:715]
        engine = tree.query_engine()
        address = observed_address(tree, "exact", queries[0])
        inj = ReadFaultInjector()
        inj.fail_always(address)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        res = engine.range_batch(queries, 0.8)
        assert any(r.degraded for r in res.queries)
        for i, r in enumerate(res.queries):
            if not r.intervals:
                continue
            for pid, (lo, hi) in r.intervals.items():
                true_dist = tree.metric.distance(
                    queries[i], tree.points[pid]
                )
                assert lo - 1e-9 <= true_dist <= hi + 1e-9


class TestObservability:
    def test_fault_instruments_move(self, uniform_points):
        from repro.obs.instruments import (
            DEGRADED_RESULTS,
            FAULT_QUARANTINES,
            READ_FAULTS,
        )

        obs.registry.reset()
        obs.enable()
        try:
            tree = faulted_tree(uniform_points[:600])
            query = uniform_points[720]
            address = observed_address(tree, "exact", query, k=5)
            inj = ReadFaultInjector()
            inj.fail_always(address)
            tree.disk.install_fault_injector(inj)
            tree.use_fault_tolerance()
            tree.nearest(query, k=5)
            assert READ_FAULTS.value(kind="persistent") >= 1
            assert FAULT_QUARANTINES.value() >= 1
            assert DEGRADED_RESULTS.value() >= 1
        finally:
            obs.disable()
            obs.registry.reset()


class TestSharedVocabulary:
    def test_both_adversaries_importable_from_faults(self):
        from repro.storage import faults, runtime_faults

        assert faults.ReadFaultInjector is runtime_faults.ReadFaultInjector
        assert faults.RetryPolicy is runtime_faults.RetryPolicy
        assert faults.FaultContext is runtime_faults.FaultContext
        assert faults.fetch_with_quarantine is (
            runtime_faults.fetch_with_quarantine
        )
        with pytest.raises(AttributeError):
            faults.no_such_symbol

    def test_container_and_runtime_layers_compose(
        self, uniform_points, tmp_path
    ):
        """One corruption primitive, two detectors.

        The same :func:`corrupt_bytes` damage is caught by the container
        checksums when applied at rest (fsck/load) and by the per-block
        CRC sidecar when applied in flight (runtime injector).
        """
        from repro.storage.faults import FaultInjector
        from repro.storage.persistence import load_iqtree, save_iqtree

        tree = faulted_tree(uniform_points[:400])
        path = tmp_path / "victim.iqt"
        save_iqtree(tree, path)

        # At rest: flip a bit inside a section, load must refuse.
        container_adversary = FaultInjector(path)
        container_adversary.flip_bit_in("payload", position=5)
        with pytest.raises(StorageError):
            load_iqtree(path)
        container_adversary.restore()
        reloaded = load_iqtree(path)

        # In flight: corrupt the same level's blocks on the timed read
        # path; the CRC sidecar catches it and quarantine degrades.
        query = uniform_points[450]
        address = observed_address(reloaded, "quantized", query)
        inj = ReadFaultInjector()
        inj.corrupt_always(address)
        reloaded.disk.install_fault_injector(inj)
        ctx = reloaded.use_fault_tolerance()
        res = reloaded.nearest(query, k=3)
        assert res.degraded
        assert address in ctx.quarantine
