"""Tests for the query-explanation diagnostics."""

import numpy as np
import pytest

from repro.exceptions import SearchError
from repro.core.diagnostics import explain_query
from repro.core.tree import IQTree


@pytest.fixture
def tree(uniform_points, small_disk):
    return IQTree.build(uniform_points, disk=small_disk)


class TestExplainQuery:
    def test_result_matches_normal_query(self, tree, rng):
        q = rng.random(8)
        explanation = explain_query(tree, q, k=3)
        normal = tree.nearest(q, k=3)
        assert np.array_equal(explanation.result_ids, normal.ids)
        assert np.allclose(
            explanation.result_distances, normal.distances
        )

    def test_every_page_classified_once(self, tree, rng):
        explanation = explain_query(tree, rng.random(8))
        assert len(explanation.decisions) == tree.n_pages
        assert explanation.pages_read + explanation.pages_pruned == (
            tree.n_pages
        )

    def test_read_pages_have_order(self, tree, rng):
        explanation = explain_query(tree, rng.random(8))
        orders = [
            d.order
            for d in explanation.decisions
            if d.outcome != "pruned"
        ]
        assert sorted(orders) == list(range(len(orders)))

    def test_at_least_one_pivot(self, tree, rng):
        explanation = explain_query(tree, rng.random(8))
        assert any(d.outcome == "pivot" for d in explanation.decisions)

    def test_pruned_pages_are_far(self, tree, rng):
        q = rng.random(8)
        explanation = explain_query(tree, q, k=1)
        if explanation.pages_pruned == 0:
            pytest.skip("no pruning for this query at this scale")
        worst_result = explanation.result_distances[-1]
        for d in explanation.decisions:
            if d.outcome == "pruned":
                assert d.mindist >= worst_result - 1e-9

    def test_summary_text(self, tree, rng):
        text = explain_query(tree, rng.random(8)).summary()
        assert "pages" in text and "ms simulated" in text

    def test_bad_query_shape(self, tree):
        with pytest.raises(SearchError):
            explain_query(tree, np.zeros(2))

    def test_clustered_query_shows_pruning(self, clustered_points, small_disk):
        tree = IQTree.build(clustered_points, disk=small_disk)
        # A query inside one cluster should never touch the others.
        explanation = explain_query(tree, np.full(6, 0.2))
        assert explanation.pages_pruned > 0
