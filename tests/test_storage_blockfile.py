"""Tests for the block-file layer."""

import pytest

from repro.exceptions import StorageError
from repro.storage.blockfile import BlockFile
from repro.storage.disk import DiskModel, SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk(DiskModel(t_seek=0.01, t_xfer=0.001, block_size=64))


class TestAppend:
    def test_append_block_returns_index(self, disk):
        f = BlockFile(disk)
        assert f.append_block(b"a" * 10) == 0
        assert f.append_block(b"b" * 64) == 1
        assert f.n_blocks == 2

    def test_append_block_rejects_oversize(self, disk):
        f = BlockFile(disk)
        with pytest.raises(StorageError):
            f.append_block(b"x" * 65)

    def test_append_record_spans_blocks(self, disk):
        f = BlockFile(disk)
        first, count = f.append_record(b"y" * 150)
        assert first == 0
        assert count == 3  # 150 bytes over 64-byte blocks

    def test_append_record_rejects_empty(self, disk):
        with pytest.raises(StorageError):
            BlockFile(disk).append_record(b"")

    def test_append_after_seal_rejected(self, disk):
        f = BlockFile(disk)
        f.append_block(b"z")
        f.seal()
        with pytest.raises(StorageError):
            f.append_block(b"w")

    def test_unseal_reopens(self, disk):
        f = BlockFile(disk)
        f.append_block(b"z")
        f.seal()
        f.unseal()
        f.append_block(b"w")
        f.seal()
        assert f.n_blocks == 2


class TestReads:
    def test_read_block_charges_time(self, disk):
        f = BlockFile(disk)
        f.append_block(b"data")
        f.seal()
        payload = f.read_block(0)
        assert payload == b"data"
        assert disk.stats.seeks == 1
        assert disk.stats.blocks_read == 1

    def test_read_before_seal_rejected(self, disk):
        f = BlockFile(disk)
        f.append_block(b"data")
        with pytest.raises(StorageError):
            f.read_block(0)

    def test_read_run_sequential(self, disk):
        f = BlockFile(disk)
        for i in range(5):
            f.append_block(bytes([i]))
        f.seal()
        payloads = f.read_run(1, 3)
        assert payloads == [b"\x01", b"\x02", b"\x03"]
        assert disk.stats.seeks == 1
        assert disk.stats.blocks_read == 3

    def test_read_run_overread_accounting(self, disk):
        f = BlockFile(disk)
        for i in range(5):
            f.append_block(bytes([i]))
        f.seal()
        f.read_run(0, 5, wanted=2)
        assert disk.stats.blocks_overread == 3

    def test_read_record_reassembles(self, disk):
        f = BlockFile(disk)
        blob = bytes(range(150))
        first, count = f.append_record(blob)
        f.seal()
        assert f.read_record(first, count) == blob

    def test_scan_reads_everything_once(self, disk):
        f = BlockFile(disk)
        for i in range(4):
            f.append_block(bytes([i]))
        f.seal()
        assert b"".join(f.scan()) == b"\x00\x01\x02\x03"
        assert disk.stats.seeks == 1
        assert disk.stats.blocks_read == 4

    def test_scan_empty_file(self, disk):
        f = BlockFile(disk)
        f.seal()
        assert f.scan() == []

    def test_out_of_range_rejected(self, disk):
        f = BlockFile(disk)
        f.append_block(b"a")
        f.seal()
        with pytest.raises(StorageError):
            f.read_block(1)
        with pytest.raises(StorageError):
            f.read_run(0, 2)

    def test_consecutive_single_reads_stay_sequential(self, disk):
        f = BlockFile(disk)
        for i in range(3):
            f.append_block(bytes([i]))
        f.seal()
        f.read_block(0)
        f.read_block(1)
        f.read_block(2)
        assert disk.stats.seeks == 1


class TestBatchedFetch:
    def test_close_blocks_merge_into_one_run(self, disk):
        # Window is t_seek/t_xfer = 10 blocks: gaps below that merge.
        f = BlockFile(disk)
        for i in range(20):
            f.append_block(bytes([i]))
        f.seal()
        result = f.read_batched([0, 3, 6])
        assert set(result) == {0, 3, 6}
        assert result[3] == b"\x03"
        assert disk.stats.seeks == 1
        assert disk.stats.blocks_read == 7
        assert disk.stats.blocks_overread == 4

    def test_distant_blocks_separate_seeks(self):
        disk = SimulatedDisk(
            DiskModel(t_seek=0.002, t_xfer=0.001, block_size=64)
        )
        f = BlockFile(disk)
        for i in range(30):
            f.append_block(bytes([i]))
        f.seal()
        f.read_batched([0, 20])  # gap 19 >= window 2 -> two seeks
        assert disk.stats.seeks == 2
        assert disk.stats.blocks_read == 2

    def test_duplicates_and_order_insensitive(self, disk):
        f = BlockFile(disk)
        for i in range(5):
            f.append_block(bytes([i]))
        f.seal()
        result = f.read_batched([4, 0, 4, 2])
        assert set(result) == {0, 2, 4}


class TestUntimedAccess:
    def test_peek_is_free(self, disk):
        f = BlockFile(disk)
        f.append_block(b"peek")
        f.seal()
        assert f.peek_block(0) == b"peek"
        assert disk.stats.elapsed == 0.0

    def test_replace_block(self, disk):
        f = BlockFile(disk)
        f.append_block(b"old")
        f.seal()
        f.replace_block(0, b"new")
        assert f.peek_block(0) == b"new"

    def test_replace_oversize_rejected(self, disk):
        f = BlockFile(disk)
        f.append_block(b"old")
        with pytest.raises(StorageError):
            f.replace_block(0, b"x" * 65)


class TestContentCrc:
    def test_deterministic_and_untimed(self, disk):
        f = BlockFile(disk)
        f.append_block(b"abc")
        f.append_block(b"defg")
        assert f.content_crc32() == f.content_crc32()
        assert disk.stats.elapsed == 0.0

    def test_changes_with_content(self, disk):
        f = BlockFile(disk)
        f.append_block(b"abc")
        before = f.content_crc32()
        f.replace_block(0, b"abd")
        assert f.content_crc32() != before

    def test_block_boundaries_matter(self, disk):
        """Moving a byte across a block boundary changes the digest."""
        a = BlockFile(disk)
        a.append_block(b"ab")
        a.append_block(b"c")
        b = BlockFile(disk)
        b.append_block(b"a")
        b.append_block(b"bc")
        assert a.content_crc32() != b.content_crc32()

    def test_empty_file(self, disk):
        assert BlockFile(disk).content_crc32() == 0
