"""Tests for the VA-file baseline."""

import numpy as np
import pytest

from repro.exceptions import BuildError, SearchError
from repro.baselines.vafile import VAFile
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM
from repro.storage.disk import SimulatedDisk
from tests.conftest import brute_force_knn


@pytest.fixture
def vafile(uniform_points, small_disk):
    return VAFile(uniform_points, bits=4, disk=small_disk)


class TestCorrectness:
    @pytest.mark.parametrize("bits", [1, 2, 4, 8])
    def test_nn_matches_brute_force(self, uniform_points, bits, rng):
        va = VAFile(uniform_points, bits=bits, disk=SimulatedDisk())
        for _ in range(5):
            q = rng.random(8)
            answer = va.nearest(q, k=1)
            _ids, dists = brute_force_knn(va.points, q, 1, EUCLIDEAN)
            assert answer.distances[0] == pytest.approx(dists[0])

    @pytest.mark.parametrize("k", [1, 4, 15])
    def test_knn_matches_brute_force(self, vafile, rng, k):
        q = rng.random(8)
        answer = vafile.nearest(q, k=k)
        _ids, dists = brute_force_knn(vafile.points, q, k, EUCLIDEAN)
        assert np.allclose(answer.distances, dists)

    def test_max_metric(self, uniform_points, small_disk):
        va = VAFile(
            uniform_points, bits=5, disk=small_disk, metric=MAXIMUM
        )
        q = np.full(8, 0.4)
        answer = va.nearest(q, k=3)
        _ids, dists = brute_force_knn(va.points, q, 3, MAXIMUM)
        assert np.allclose(answer.distances, dists)

    def test_range_query(self, vafile, rng):
        q = rng.random(8)
        answer = vafile.range_query(q, 0.5)
        dists = EUCLIDEAN.distances(q, vafile.points)
        expected = set(np.flatnonzero(dists <= 0.5).tolist())
        assert set(answer.ids.tolist()) == expected


class TestTwoPhaseBehavior:
    def test_refinements_reported(self, vafile, rng):
        answer = vafile.nearest(rng.random(8), k=1)
        assert answer.refinements >= 1  # at least the answer itself

    def test_more_bits_fewer_refinements(self, uniform_points, rng):
        coarse = VAFile(uniform_points, bits=1, disk=SimulatedDisk())
        fine = VAFile(uniform_points, bits=8, disk=SimulatedDisk())
        q = rng.random(8)
        assert fine.nearest(q).refinements <= coarse.nearest(q).refinements

    def test_more_bits_larger_approx_file(self, uniform_points, small_disk):
        from repro.storage.disk import DiskModel

        def blocks(bits):
            disk = SimulatedDisk(DiskModel(block_size=512))
            return VAFile(uniform_points, bits=bits, disk=disk).approx_blocks

        sizes = [blocks(b) for b in (2, 4, 8)]
        assert sizes[0] < sizes[1] < sizes[2]

    def test_scan_is_sequential(self, vafile, rng):
        vafile.disk.park()
        answer = vafile.nearest(rng.random(8))
        # One seek for the approximation scan plus one per refinement
        # cache miss, never one per point.
        assert answer.io.seeks <= 1 + answer.refinements

    def test_refinement_count_much_smaller_than_n(self, vafile, rng):
        answer = vafile.nearest(rng.random(8), k=1)
        assert answer.refinements < vafile.n_points * 0.05


class TestValidation:
    def test_bits_out_of_range(self, uniform_points):
        with pytest.raises(BuildError):
            VAFile(uniform_points, bits=0)
        with pytest.raises(BuildError):
            VAFile(uniform_points, bits=17)

    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            VAFile(np.empty((0, 3)))

    def test_bad_query(self, vafile):
        with pytest.raises(SearchError):
            vafile.nearest(np.zeros(3))
        with pytest.raises(SearchError):
            vafile.nearest(np.zeros(8), k=0)
        with pytest.raises(SearchError):
            vafile.range_query(np.zeros(8), -1.0)

    def test_repr(self, vafile):
        assert "bits=4" in repr(vafile)
