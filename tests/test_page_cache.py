"""The cross-batch decoded-page cache and the lock-striped buffer pool.

The :class:`~repro.engine.page_cache.DecodedPageCache` must never serve
a stale decoded page: its per-entry CRC token has to catch in-place
``replace_block`` rewrites (the regression the PR-4 pool-invalidation
fix guarded at the *block* level), structural re-layouts must clear it
wholesale, and quarantined pages must bypass it so they are still
reported lost.  The striped :class:`~repro.storage.cache.BufferPool`
must behave identically to the classic single-stripe pool on every
observable axis.
"""

import numpy as np
import pytest

from repro.core.tree import IQTree
from repro.engine.page_cache import DecodedPageCache
from repro.exceptions import SearchError, StorageError
from repro.storage.blockfile import BlockFile
from repro.storage.cache import BufferPool
from repro.storage.disk import DiskModel, SimulatedDisk
from repro.storage.runtime_faults import ReadFaultInjector


def make_disk() -> SimulatedDisk:
    return SimulatedDisk(
        DiskModel(t_seek=0.0025, t_xfer=0.0002, block_size=2048)
    )


@pytest.fixture
def data(rng) -> np.ndarray:
    return rng.random((1500, 8)).astype(np.float32).astype(np.float64)


@pytest.fixture
def tree(data) -> IQTree:
    return IQTree.build(data, disk=make_disk(), optimize=False, fixed_bits=6)


def warm(tree, queries, k=5):
    """Run single queries so the attached cache sees every decode."""
    for q in queries:
        tree.nearest(q, k=k)


class TestBasics:
    def test_budget_must_be_positive(self):
        with pytest.raises(SearchError):
            DecodedPageCache(0)
        with pytest.raises(SearchError):
            DecodedPageCache(-1)

    def test_attach_by_budget_or_instance(self, tree):
        cache = tree.use_decoded_cache(1 << 20)
        assert isinstance(cache, DecodedPageCache)
        assert tree.decoded_cache is cache
        other = DecodedPageCache(1 << 20)
        assert tree.use_decoded_cache(other) is other
        tree.clear_decoded_cache()
        assert tree.decoded_cache is None

    def test_pages_decode_once_across_single_queries(self, tree, rng):
        tree.use_decoded_cache(16 << 20)
        query = rng.random(8)
        cold = tree.nearest(query, k=5)
        elapsed_cold = tree.disk.stats.elapsed
        warmres = tree.nearest(query, k=5)
        assert np.array_equal(cold.ids, warmres.ids)
        assert np.array_equal(cold.distances, warmres.distances)
        cache = tree.decoded_cache
        assert cache.hits > 0
        # The warm query still pays the directory scan and third-level
        # refinements, but no quantized-page transfers.
        assert tree.disk.stats.elapsed > elapsed_cold

    def test_hit_rate_and_repr(self, tree, rng):
        cache = tree.use_decoded_cache(16 << 20)
        assert cache.hit_rate == 0.0  # cold: no division error
        warm(tree, rng.random((3, 8)))
        warm(tree, rng.random((3, 8)))
        assert 0.0 < cache.hit_rate <= 1.0
        assert "DecodedPageCache" in repr(cache)
        assert len(cache) == cache.resident_pages > 0


class TestLRUBudget:
    def test_evicts_least_recently_used_first(self, tree, rng):
        big = tree.use_decoded_cache(1 << 30)
        warm(tree, rng.random((6, 8)))
        per_page = big.current_bytes / max(len(big), 1)
        assert len(big) >= 3
        # Rebuild with room for roughly two pages.
        small = tree.use_decoded_cache(int(per_page * 2.5))
        warm(tree, rng.random((6, 8)))
        assert small.evictions > 0
        assert small.current_bytes <= small.budget_bytes

    def test_oversized_entry_not_retained(self, tree, rng):
        cache = tree.use_decoded_cache(1)  # nothing fits
        warm(tree, rng.random((2, 8)))
        assert len(cache) == 0
        assert cache.current_bytes == 0
        # Rejected up front: an entry that can never fit is not
        # admitted, so nothing is ever evicted on its behalf.
        assert cache.evictions == 0

    def test_oversized_put_leaves_residents_alone(self, tree, rng):
        """Satellite regression: admitting an entry bigger than the
        whole budget used to evict *every* resident entry before the
        newcomer evicted itself -- one oversized page flushed the
        cache.  It must be rejected without touching residents."""
        cache = tree.use_decoded_cache(1 << 30)
        warm(tree, rng.random((4, 8)))
        assert len(cache) > 0
        resident_before = sorted(cache._entries)
        bytes_before = cache.current_bytes
        evictions_before = cache.evictions
        page = resident_before[0]
        big = np.zeros(cache.budget_bytes + 1, dtype=np.uint8)

        class _Fat:
            codes = big
            points = None
            ids = None

        other = next(p for p in resident_before if p != page) if len(
            resident_before
        ) > 1 else None
        cache.put(tree, page, _Fat())
        # The oversized refresh dropped the (stale) old entry for that
        # page but no resident was evicted to make room.
        assert cache.evictions == evictions_before
        assert cache.current_bytes <= bytes_before
        assert page not in cache
        if other is not None:
            assert other in cache

    def test_budget_always_respected(self, tree, rng):
        cache = tree.use_decoded_cache(64 << 10)
        warm(tree, rng.random((10, 8)))
        assert cache.current_bytes <= cache.budget_bytes


class TestInvalidation:
    def test_replace_block_invalidates_stale_decode(self, tree, rng):
        """Satellite regression: an in-place page rewrite must never be
        served from a pre-rewrite decoded copy (CRC sidecar mismatch)."""
        cache = tree.use_decoded_cache(16 << 20)
        warm(tree, rng.random((4, 8)))
        page = next(iter(cache._entries))
        entry = cache._entries[page]
        # Rewrite the backing block in place with different bytes.
        payload = bytearray(tree._quant_file.peek_block(page))
        payload[-1] ^= 0xFF
        tree._quant_file.replace_block(page, bytes(payload))
        assert tree._quant_file.block_crc(page) != entry.crc
        before = cache.invalidations
        assert cache.get(tree, page) is None
        assert cache.invalidations == before + 1
        assert page not in cache

    def test_maintenance_relayout_clears_cache(self, tree, rng):
        cache = tree.use_decoded_cache(16 << 20)
        warm(tree, rng.random((4, 8)))
        assert len(cache) > 0
        tree.insert(rng.random(8))
        tree.nearest(rng.random(8), k=3)  # triggers the re-layout
        # Page indices were reassigned wholesale; nothing stale remains
        # and the old residency was counted as invalidations.
        assert cache.invalidations > 0

    def test_results_stay_exact_after_maintenance(self, tree, rng, data):
        tree.use_decoded_cache(16 << 20)
        queries = rng.random((4, 8))
        warm(tree, queries)
        for pid in (3, 77, 400):
            tree.delete(pid)
        alive = np.setdiff1d(np.arange(len(data)), [3, 77, 400])
        for q in queries:
            res = tree.nearest(q, k=5)
            brute = alive[
                np.argsort(np.linalg.norm(data[alive] - q, axis=1))[:5]
            ]
            assert set(res.ids.tolist()) == set(brute.tolist())

    def test_explicit_invalidate_and_clear(self, tree, rng):
        cache = tree.use_decoded_cache(16 << 20)
        warm(tree, rng.random((4, 8)))
        page = next(iter(cache._entries))
        cache.invalidate(page)
        assert page not in cache
        cache.invalidate(page)  # absent: no-op, no double count
        n = len(cache)
        cache.clear()
        assert len(cache) == 0 and cache.current_bytes == 0
        assert cache.invalidations >= n


class TestCrcReadDiscipline:
    """put() must read the CRC sidecar exactly once per call.

    Satellite regression: it used to read ``block_crc`` twice -- once
    for the bounds-reuse check against the old entry and once for the
    new entry's validity token.  An in-place rewrite landing between
    the two reads paired the *old* page's derived bounds with the *new*
    page's CRC, producing a stale entry that self-validates forever.
    """

    class _Handle:
        codes = np.zeros(64)
        points = None
        ids = None

    class _MutatingQuantFile:
        """A sidecar that changes on every read -- the worst-case
        concurrent writer, compressed into one stub."""

        def __init__(self):
            self.calls = 0

        def block_crc(self, page):
            self.calls += 1
            return 1000 + self.calls

    class _Tree:
        pass

    def make(self):
        tree = self._Tree()
        tree._quant_file = self._MutatingQuantFile()
        return DecodedPageCache(1 << 20), tree

    def test_put_reads_sidecar_once(self):
        cache, tree = self.make()
        bounds = (np.zeros((4, 8)), np.ones((4, 8)))
        cache.put(tree, 3, self._Handle(), bounds=bounds)
        assert tree._quant_file.calls == 1
        # A refresh exercises the bounds-reuse branch as well; it must
        # still be one read, shared by the check and the token.
        cache.put(tree, 3, self._Handle())
        assert tree._quant_file.calls == 2

    def test_refresh_token_matches_compared_value(self):
        cache, tree = self.make()
        bounds = (np.zeros((4, 8)), np.ones((4, 8)))
        cache.put(tree, 3, self._Handle(), bounds=bounds)  # crc 1001
        cache.put(tree, 3, self._Handle())  # single read: crc 1002
        entry = cache._entries[3]
        assert entry.crc == 1002
        # 1002 != 1001, so the old bounds must NOT have been carried
        # over -- the content changed under the refresh.
        assert entry.bounds is None


class TestQuarantineInterplay:
    def test_quarantined_page_not_served_from_cache(self, data, rng):
        """A page that decoded fine before its block went bad must be
        reported lost, not silently served from the decoded cache."""
        tree = IQTree.build(
            data, disk=make_disk(), optimize=False, fixed_bits=6
        )
        tree.use_decoded_cache(16 << 20)
        query = rng.random(8)
        tree.nearest(query, k=5)  # decode everything the query needs
        # Find a quantized page the query touched and poison it.
        observer = ReadFaultInjector()
        tree.disk.install_fault_injector(observer)
        tree.nearest(query, k=5)
        tree.disk.clear_fault_injector()
        start = tree._quant_file.extent_start
        n_pages = tree.n_pages
        touched = [
            a
            for a in observer.attempts_seen
            if start <= a < start + n_pages
        ]
        if not touched:  # the whole quantized level was cache-resident
            touched = [start]
        inj = ReadFaultInjector()
        inj.fail_always(touched[0])
        tree.disk.install_fault_injector(inj)
        ctx = tree.use_fault_tolerance()
        ctx.quarantine.add(touched[0])
        res = tree.nearest(query, k=5)
        assert res.degraded
        assert any(
            lost.page == touched[0] - start for lost in res.lost_pages
        )


class TestStripedBufferPool:
    def test_stripe_validation(self):
        with pytest.raises(StorageError):
            BufferPool(8, stripes=0)

    def make_file(self, n_blocks=32):
        disk = SimulatedDisk(
            DiskModel(t_seek=0.01, t_xfer=0.001, block_size=64)
        )
        f = BlockFile(disk)
        for i in range(n_blocks):
            f.append_block(bytes([i]) * 8)
        f.seal()
        return f

    @pytest.mark.parametrize("stripes", [1, 2, 4, 7])
    def test_striped_pool_matches_unstriped_counters(self, stripes):
        """Same accesses -> same hits/misses for any stripe count with
        per-stripe capacity covering the same working set."""
        accesses = [3, 5, 3, 9, 5, 3, 11, 9, 30, 3, 5]
        plain = BufferPool(64)
        striped = BufferPool(64, stripes=stripes)
        for a in accesses:
            if not plain.lookup(a):
                plain.admit(a)
            if not striped.lookup(a):
                striped.admit(a)
        assert striped.hits == plain.hits
        assert striped.misses == plain.misses
        assert striped.resident_count == plain.resident_count

    def test_capacity_split_covers_all_stripes(self):
        pool = BufferPool(10, stripes=4)
        assert sum(pool._shard_caps) == 10
        assert max(pool._shard_caps) - min(pool._shard_caps) <= 1

    def test_eviction_is_per_stripe(self):
        pool = BufferPool(2, stripes=2)
        pool.admit(0)  # stripe 0
        pool.admit(2)  # stripe 0 -> evicts 0 (cap 1 per stripe)
        pool.admit(1)  # stripe 1
        assert not pool.lookup(0)  # evicted within its own stripe
        assert pool.lookup(2)
        assert pool.lookup(1)  # stripe 1 never overflowed

    def test_invalidate_and_clear_across_stripes(self):
        pool = BufferPool(16, stripes=4)
        for a in range(8):
            pool.admit(a)
        assert pool.resident_count == 8
        pool.invalidate(5)
        assert pool.resident_count == 7
        pool.clear()
        assert pool.resident_count == 0

    def test_tree_queries_identical_under_striping(self, data, rng):
        """End to end: a striped pool yields the same results and the
        same hit/miss accounting as the classic pool."""
        queries = rng.random((6, 8))
        ledgers = []
        for stripes in (1, 4):
            tree = IQTree.build(
                data, disk=make_disk(), optimize=False, fixed_bits=6
            )
            pool = BufferPool(256, stripes=stripes)
            tree.use_buffer_pool(pool)
            ids = [tree.nearest(q, k=5).ids.tolist() for q in queries]
            ledgers.append(
                (ids, pool.hits, pool.misses, tree.disk.stats.elapsed)
            )
        assert ledgers[0] == ledgers[1]
