"""Tests for the write-ahead journal and crash recovery (PR 9)."""

import struct

import numpy as np
import pytest

from repro.exceptions import IntegrityError, SearchError, StorageError
from repro.core.tree import IQTree
from repro.storage.faults import FaultInjector, PowerLoss
from repro.storage.journal import (
    CRASH_POINTS,
    OP_DELETE,
    OP_INSERT,
    DurableTree,
    WriteAheadJournal,
    record_spans,
    scan_journal,
    wal_path,
)


@pytest.fixture
def store(uniform_points, small_disk, tmp_path):
    tree = IQTree.build(uniform_points[:400], disk=small_disk)
    return DurableTree.create(tree, tmp_path / "idx.iq")


def answers(tree, queries, k=5):
    tree._ensure_clean()
    return [tree.nearest(q, k=k) for q in queries]


def assert_same_answers(tree_a, tree_b, queries, k=5):
    for ra, rb in zip(
        answers(tree_a, queries, k), answers(tree_b, queries, k)
    ):
        assert np.array_equal(ra.ids, rb.ids)
        assert np.array_equal(ra.distances, rb.distances)


class TestJournalFile:
    def test_create_then_scan_empty(self, tmp_path):
        j = WriteAheadJournal.create(tmp_path / "x.wal", base_seq=7)
        assert j.last_seq == 7
        scan = scan_journal(tmp_path / "x.wal")
        assert scan.base_seq == 7
        assert scan.records == ()
        assert scan.outcome == "clean"

    def test_append_and_rescan(self, tmp_path):
        j = WriteAheadJournal.create(tmp_path / "x.wal")
        s1 = j.append(OP_INSERT, b"\x01" * 16)
        s2 = j.append(OP_DELETE, struct.pack("<q", 3))
        assert (s1, s2) == (1, 2)
        j.close()
        scan = scan_journal(tmp_path / "x.wal")
        assert [r.seq for r in scan.records] == [1, 2]
        assert scan.records[0].op == OP_INSERT
        assert scan.records[1].payload == struct.pack("<q", 3)

    def test_unknown_op_rejected(self, tmp_path):
        j = WriteAheadJournal.create(tmp_path / "x.wal")
        with pytest.raises(StorageError):
            j.append(99, b"")

    def test_reset_restarts_sequence_from_base(self, tmp_path):
        j = WriteAheadJournal.create(tmp_path / "x.wal")
        for _ in range(4):
            j.append(OP_INSERT, b"p")
        j.reset(4)
        assert j.last_seq == 4
        assert j.append(OP_INSERT, b"q") == 5
        j.close()
        scan = scan_journal(tmp_path / "x.wal")
        assert scan.base_seq == 4
        assert [r.seq for r in scan.records] == [5]

    def test_torn_tail_is_dropped_and_truncated(self, tmp_path):
        path = tmp_path / "x.wal"
        j = WriteAheadJournal.create(path)
        j.append(OP_INSERT, b"a" * 24)
        j.append(OP_INSERT, b"b" * 24)
        j.close()
        spans = record_spans(path)
        # Cut the last record short: a torn, never-acked append.
        FaultInjector(path).truncate_to(spans[-1][0] + 5)
        j2 = WriteAheadJournal(path)
        assert j2.last_seq == 1
        assert path.stat().st_size == spans[0][1]
        # The journal keeps appending after the repair.
        assert j2.append(OP_DELETE, struct.pack("<q", 0)) == 2
        j2.close()
        assert [r.seq for r in scan_journal(path).records] == [1, 2]

    def test_corrupt_acked_record_raises(self, tmp_path):
        path = tmp_path / "x.wal"
        j = WriteAheadJournal.create(path)
        j.append(OP_INSERT, b"a" * 24)
        j.append(OP_INSERT, b"b" * 24)
        j.close()
        start, _stop, _seq = record_spans(path)[0]
        FaultInjector(path).flip_bit(start + 13)  # inside the body
        with pytest.raises(IntegrityError, match="journal"):
            scan_journal(path)

    def test_corrupt_header_raises(self, tmp_path):
        path = tmp_path / "x.wal"
        WriteAheadJournal.create(path)
        FaultInjector(path).flip_bit(9)  # inside base_seq
        with pytest.raises(IntegrityError, match="header"):
            scan_journal(path)

    def test_sequence_gap_raises(self, tmp_path):
        path = tmp_path / "x.wal"
        j = WriteAheadJournal.create(path)
        j.append(OP_INSERT, b"a" * 8)
        j.append(OP_INSERT, b"b" * 8)
        j.close()
        spans = record_spans(path)
        raw = bytearray(path.read_bytes())
        # Drop record 1 entirely: 2 follows the header -> gap.
        del raw[spans[0][0] : spans[0][1]]
        path.write_bytes(bytes(raw))
        with pytest.raises(IntegrityError, match="gap"):
            scan_journal(path)

    def test_not_a_journal_raises(self, tmp_path):
        path = tmp_path / "x.wal"
        path.write_bytes(b"definitely not a journal")
        with pytest.raises(IntegrityError):
            scan_journal(path)


class TestDurableTree:
    def test_replay_rebuilds_acked_state(self, store, rng):
        ids = [store.insert(rng.random(8)) for _ in range(12)]
        store.delete(ids[2])
        store.delete(ids[9])
        queries = [rng.random(8) for _ in range(4)]
        # No checkpoint: everything lives in the journal.
        recovered = DurableTree.open(store.path)
        assert recovered.recovered_ops == 14
        assert_same_answers(store.tree, recovered.tree, queries)

    def test_checkpoint_folds_journal(self, store, rng):
        for _ in range(6):
            store.insert(rng.random(8))
        store.checkpoint()
        assert store.journal.n_records == 0
        recovered = DurableTree.open(store.path)
        assert recovered.recovered_ops == 0
        assert recovered.tree.n_points == store.tree.n_points

    def test_ops_after_checkpoint_replay_only_the_tail(self, store, rng):
        for _ in range(5):
            store.insert(rng.random(8))
        store.checkpoint()
        post = [store.insert(rng.random(8)) for _ in range(3)]
        recovered = DurableTree.open(store.path)
        assert recovered.recovered_ops == len(post)
        queries = [rng.random(8) for _ in range(3)]
        assert_same_answers(store.tree, recovered.tree, queries)

    def test_open_without_sidecar_starts_empty_journal(
        self, uniform_points, small_disk, tmp_path
    ):
        from repro.storage.persistence import save_iqtree

        tree = IQTree.build(uniform_points[:300], disk=small_disk)
        save_iqtree(tree, tmp_path / "bare.iq")
        store = DurableTree.open(tmp_path / "bare.iq")
        assert store.recovered_ops == 0
        assert wal_path(tmp_path / "bare.iq").exists()
        assert store.insert(np.full(8, 0.5)) == tree.n_points

    def test_insert_validates_dimension_before_journaling(self, store):
        with pytest.raises(SearchError):
            store.insert(np.zeros(3))
        assert store.journal.n_records == 0

    def test_delete_validates_id_before_journaling(self, store):
        with pytest.raises(SearchError):
            store.delete(10**9)
        assert store.journal.n_records == 0


class TestCrashMatrix:
    """Every protocol boundary: crash, recover, compare to acked state."""

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_then_recover_equals_acked_replay(
        self, store, rng, point
    ):
        acked_ids = [store.insert(rng.random(8)) for _ in range(8)]
        store.delete(acked_ids[0])
        acked_points = store.tree._points.copy()
        n_acked = store.tree.n_points

        store.inject_crash(point)
        with pytest.raises(PowerLoss):
            if point.startswith("insert"):
                store.insert(rng.random(8))
            elif point.startswith("delete"):
                store.delete(acked_ids[1])
            else:
                store.checkpoint()

        from repro.core.maintenance import locate_point

        recovered = DurableTree.open(store.path)
        if point == "insert:post-append":
            # Acked by the journal: the insert must survive.
            assert recovered.tree.n_points == n_acked + 1
        elif point == "delete:post-append":
            # Acked delete: the victim must stay gone after recovery.
            assert locate_point(recovered.tree, acked_ids[1]) is None
        else:
            assert recovered.tree.n_points == n_acked
            assert locate_point(recovered.tree, acked_ids[1]) is not None
            recovered.tree._ensure_clean()
            assert np.array_equal(
                recovered.tree._points[: len(acked_points)], acked_points
            )

    @pytest.mark.parametrize("budget", [1, 3, 7, 20])
    def test_torn_append_loses_only_the_unacked_op(
        self, store, rng, budget
    ):
        for _ in range(4):
            store.insert(rng.random(8))
        n_acked = store.tree.n_points
        queries = [rng.random(8) for _ in range(3)]
        before = answers(store.tree, queries)
        store.inject_torn_append(budget)
        with pytest.raises(PowerLoss):
            store.insert(rng.random(8))
        recovered = DurableTree.open(store.path)
        assert recovered.tree.n_points == n_acked
        for ra, rb in zip(before, answers(recovered.tree, queries)):
            assert np.array_equal(ra.ids, rb.ids)

    @pytest.mark.parametrize("budget", [1, 64, 4096])
    def test_torn_checkpoint_preserves_old_container(
        self, store, rng, budget
    ):
        for _ in range(5):
            store.insert(rng.random(8))
        queries = [rng.random(8) for _ in range(3)]
        before = answers(store.tree, queries)
        store.inject_torn_checkpoint(budget)
        with pytest.raises(PowerLoss):
            store.checkpoint()
        recovered = DurableTree.open(store.path)
        assert recovered.recovered_ops == 5
        for ra, rb in zip(before, answers(recovered.tree, queries)):
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)

    def test_crash_between_save_and_reset_does_not_double_apply(
        self, store, rng
    ):
        """The checkpoint:post-save window: container has wal_seq, the
        journal still holds the folded records -- replay must skip them."""
        for _ in range(6):
            store.insert(rng.random(8))
        n_acked = store.tree.n_points
        store.inject_crash("checkpoint:post-save")
        with pytest.raises(PowerLoss):
            store.checkpoint()
        # Journal untouched, container already carries wal_seq=6.
        assert store.journal.n_records == 6
        recovered = DurableTree.open(store.path)
        assert recovered.recovered_ops == 0
        assert recovered.tree.n_points == n_acked

    def test_recovery_is_idempotent(self, store, rng):
        for _ in range(7):
            store.insert(rng.random(8))
        once = DurableTree.open(store.path)
        twice = DurableTree.open(store.path)
        queries = [rng.random(8) for _ in range(3)]
        assert_same_answers(once.tree, twice.tree, queries)

    def test_bit_flip_in_acked_record_is_loud(self, store, rng):
        for _ in range(5):
            store.insert(rng.random(8))
        start, stop, _seq = record_spans(wal_path(store.path))[2]
        FaultInjector(wal_path(store.path)).flip_bit(start + 16)
        with pytest.raises(IntegrityError):
            DurableTree.open(store.path)


class TestContainerCompat:
    def test_wal_seq_meta_roundtrip(self, store, rng):
        for _ in range(3):
            store.insert(rng.random(8))
        store.checkpoint()
        from repro.storage.persistence import load_iqtree

        tree = load_iqtree(store.path)
        assert tree._wal_seq == 3

    def test_journal_free_container_unchanged(
        self, uniform_points, small_disk, tmp_path
    ):
        """A tree that never journaled serializes without a wal_seq key
        (byte-compatible with pre-journal containers)."""
        from repro.storage.persistence import save_iqtree, verify_container

        tree = IQTree.build(uniform_points[:300], disk=small_disk)
        save_iqtree(tree, tmp_path / "plain.iq")
        assert verify_container(tmp_path / "plain.iq")
        raw = (tmp_path / "plain.iq").read_bytes()
        assert b"wal_seq" not in raw

    def test_negative_wal_seq_rejected(self, store, rng, tmp_path):
        store.insert(rng.random(8))
        store.checkpoint()
        raw = store.path.read_bytes()
        bad = raw.replace(b'"wal_seq": 1', b'"wal_seq": -1')
        assert bad != raw
        (tmp_path / "bad.iq").write_bytes(bad)
        from repro.storage.persistence import load_iqtree

        # The meta section is CRC'd, so the edit surfaces as integrity
        # damage one way or the other -- never as a negative seq.
        with pytest.raises(IntegrityError):
            load_iqtree(tmp_path / "bad.iq")
