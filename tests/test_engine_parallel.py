"""Parallel batch serving must be bit-identical to serial execution.

The worker pool shards only pure CPU phases; every simulated-I/O charge
and every shared-state side effect stays on the coordinator.  These
tests pin the consequence: for any worker count and either executor
backend (threads or processes), a batch returns the same results,
charges the same I/O ledger, and lands the same values in every
observability counter -- including under read-path fault injection,
where degraded results and session counters must also agree.
"""

import numpy as np
import pytest

from repro.core.tree import IQTree
from repro.engine import DecodedPageCache, QueryEngine, WorkerPool
from repro.exceptions import SearchError
from repro.obs.instruments import REGISTRY
from repro.storage.cache import BufferPool
from repro.storage.disk import DiskModel, IOStats, SimulatedDisk
from repro.storage.runtime_faults import ReadFaultInjector


def make_disk() -> SimulatedDisk:
    return SimulatedDisk(
        DiskModel(t_seek=0.0025, t_xfer=0.0002, block_size=2048)
    )


@pytest.fixture
def data(rng) -> np.ndarray:
    return rng.random((1500, 8)).astype(np.float32).astype(np.float64)


@pytest.fixture
def queries(rng) -> np.ndarray:
    return rng.random((13, 8))


def build_tree(data) -> IQTree:
    return IQTree.build(data, disk=make_disk(), optimize=False, fixed_bits=5)


@pytest.fixture
def live_registry():
    REGISTRY.reset()
    REGISTRY.enable()
    try:
        yield REGISTRY
    finally:
        REGISTRY.disable()
        REGISTRY.reset()


def ledger_tuple(io: IOStats) -> tuple:
    return (io.seeks, io.blocks_read, io.blocks_overread, io.elapsed)


# Module-level worker functions: picklable, so they run on either
# backend (closures and lambdas are thread-only).
def _square_shard(shard, ledger):
    return [x * x for x in shard]


def _scaled_shard(task, shard, ledger):
    return [task["scale"] * x for x in shard]


def _charge_shard(shard, ledger):
    for x in shard:
        ledger.seeks += 1
        ledger.blocks_read += x
        ledger.elapsed += 0.5
    return list(shard)


def _boom_every_shard(shard, ledger):
    raise ValueError(f"shard at {shard[0]} failed")


class TestWorkerPool:
    def test_workers_must_be_positive(self):
        with pytest.raises(SearchError):
            WorkerPool(0)

    def test_backend_validated_and_auto_resolved(self):
        with pytest.raises(SearchError):
            WorkerPool(2, backend="fiber")
        assert WorkerPool(1).backend == "thread"
        assert WorkerPool(4).backend == "process"
        assert WorkerPool(4, backend="thread").backend == "thread"
        assert "backend" in repr(WorkerPool(4))

    def test_sharding_is_contiguous_balanced_deterministic(self):
        pool = WorkerPool(4)
        shards = pool.shard(list(range(10)))
        assert [len(s) for s in shards] == [3, 3, 2, 2]
        assert [x for s in shards for x in s] == list(range(10))
        assert pool.shard(list(range(10))) == shards  # pure function
        assert pool.shard([]) == []
        assert pool.shard([7]) == [[7]]

    def test_fewer_items_than_workers(self):
        shards = WorkerPool(8).shard([1, 2, 3])
        assert shards == [[1], [2], [3]]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_map_sharded_preserves_item_order(self, workers, backend):
        pool = WorkerPool(workers, backend=backend)
        results, merged = pool.map_sharded(_square_shard, range(23))
        assert results == [x * x for x in range(23)]
        assert ledger_tuple(merged) == (0, 0, 0, 0.0)
        pool.close()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_task_payload_shared_by_every_shard(self, backend):
        pool = WorkerPool(3, backend=backend)
        results, _ = pool.map_sharded(
            _scaled_shard, range(10), task={"scale": 7}
        )
        assert results == [7 * x for x in range(10)]
        pool.close()

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_ledgers_merge_in_shard_order(self, backend):
        serial = WorkerPool(1).map_sharded(_charge_shard, range(9))
        pool = WorkerPool(3, backend=backend)
        parallel = pool.map_sharded(_charge_shard, range(9))
        pool.close()
        assert serial[0] == parallel[0]
        assert ledger_tuple(serial[1]) == ledger_tuple(parallel[1])
        assert parallel[1].seeks == 9
        assert parallel[1].blocks_read == sum(range(9))

    def test_worker_exception_propagates(self):
        def boom(shard, ledger):
            if 5 in shard:
                raise ValueError("shard failure")
            return list(shard)

        with pytest.raises(ValueError, match="shard failure"):
            WorkerPool(3, backend="thread").map_sharded(boom, range(9))

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_concurrent_failures_are_aggregated(self, backend):
        """Satellite regression: when several shards fail, only the
        first exception used to surface -- the other shards' failures
        vanished.  Now they ride along as ``__notes__`` entries."""
        pool = WorkerPool(2, backend=backend)
        with pytest.raises(ValueError, match="shard at 0 failed") as info:
            pool.map_sharded(_boom_every_shard, range(4))
        pool.close()
        notes = getattr(info.value, "__notes__", [])
        assert any(
            "shard 1 also failed" in note and "shard at 2 failed" in note
            for note in notes
        )

    def test_unpicklable_task_raises_search_error(self):
        pool = WorkerPool(2, backend="process")
        with pytest.raises(SearchError, match="picklable"):
            pool.map_sharded(lambda s, led: list(s), range(8))
        pool.close()

    def test_close_is_idempotent_and_reusable(self):
        pool = WorkerPool(2, backend="thread")
        pool.map_sharded(lambda s, led: list(s), range(4))
        pool.close()
        pool.close()
        results, _ = pool.map_sharded(lambda s, led: list(s), range(4))
        assert results == [0, 1, 2, 3]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_single_shard_runs_inline(self, backend):
        # One shard never pays an executor hop -- lambdas work even on
        # the process backend because nothing crosses a process.
        pool = WorkerPool(4, backend=backend)
        results, _ = pool.map_sharded(lambda s, led: list(s), [42])
        assert results == [42]
        assert pool._executor is None
        pool.close()


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_knn_results_and_ledger_match_serial(
        self, data, queries, workers
    ):
        baseline = QueryEngine(build_tree(data), workers=1)
        base = baseline.knn_batch(queries, k=6)
        engine = QueryEngine(build_tree(data), workers=workers)
        got = engine.knn_batch(queries, k=6)
        assert got.stats.workers == workers
        for b, g in zip(base, got):
            assert np.array_equal(b.ids, g.ids)
            assert np.array_equal(b.distances, g.distances)
            assert b.stats == g.stats
        assert ledger_tuple(base.stats.io) == ledger_tuple(got.stats.io)
        assert base.stats.pages_read == got.stats.pages_read
        assert base.stats.refinements == got.stats.refinements
        engine.close()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_range_results_and_ledger_match_serial(
        self, data, queries, workers
    ):
        base = QueryEngine(build_tree(data), workers=1).range_batch(
            queries, 0.35
        )
        got = QueryEngine(build_tree(data), workers=workers).range_batch(
            queries, 0.35
        )
        for b, g in zip(base, got):
            assert np.array_equal(b.ids, g.ids)
            assert np.array_equal(b.distances, g.distances)
        assert ledger_tuple(base.stats.io) == ledger_tuple(got.stats.io)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_obs_counters_match_serial(
        self, data, queries, workers, live_registry
    ):
        QueryEngine(build_tree(data), workers=1).knn_batch(queries, k=4)
        serial_counters = live_registry.collect()
        live_registry.reset()
        QueryEngine(build_tree(data), workers=workers).knn_batch(
            queries, k=4
        )
        assert live_registry.collect() == serial_counters

    def test_matches_single_query_api(self, data, queries):
        tree = build_tree(data)
        engine = QueryEngine(tree, workers=4)
        result = engine.knn_batch(queries, k=5)
        for query, got in zip(queries, result):
            ref = tree.nearest(query, k=5)
            assert np.array_equal(got.ids, ref.ids)
            assert np.allclose(got.distances, ref.distances)

    def test_pool_accounting_matches_serial(self, data, queries):
        ledgers = []
        for workers in (1, 4):
            tree = build_tree(data)
            engine = QueryEngine(tree, pool=128, workers=workers)
            engine.knn_batch(queries, k=4)
            stats = engine.knn_batch(queries, k=4).stats
            ledgers.append(
                (stats.pool_hits, stats.pool_misses, ledger_tuple(stats.io))
            )
        assert ledgers[0] == ledgers[1]


class TestChaosEquivalence:
    """Fault injection: degraded results must not depend on workers."""

    def faulted_setup(self, data):
        tree = build_tree(data)
        # Aim persistent faults at one quantized and one exact block.
        inj = ReadFaultInjector()
        inj.fail_always(tree._quant_file.extent_start + 1)
        inj.fail_always(tree._exact_file.extent_start)
        tree.disk.install_fault_injector(inj)
        ctx = tree.use_fault_tolerance()
        return tree, ctx

    @pytest.mark.parametrize("workers", [2, 4])
    def test_degraded_batch_matches_serial(self, data, queries, workers):
        tree_s, ctx_s = self.faulted_setup(data)
        base = QueryEngine(tree_s, workers=1).knn_batch(queries, k=6)
        tree_p, ctx_p = self.faulted_setup(data)
        got = QueryEngine(tree_p, workers=workers).knn_batch(queries, k=6)
        for b, g in zip(base, got):
            assert np.array_equal(b.ids, g.ids)
            assert np.array_equal(b.distances, g.distances)
            assert b.degraded == g.degraded
            assert b.intervals == g.intervals
            assert b.lost_pages == g.lost_pages
            if b.certain is None:
                assert g.certain is None
            else:
                assert np.array_equal(b.certain, g.certain)
        assert ledger_tuple(base.stats.io) == ledger_tuple(got.stats.io)
        # Session counters advanced identically.
        assert (
            ctx_s.retries,
            ctx_s.quarantined,
            ctx_s.degraded_results,
            ctx_s.lost_pages,
        ) == (
            ctx_p.retries,
            ctx_p.quarantined,
            ctx_p.degraded_results,
            ctx_p.lost_pages,
        )
        assert base.stats.degraded and got.stats.degraded

    @pytest.mark.parametrize("workers", [2, 4])
    def test_chaos_obs_counters_match_serial(
        self, data, queries, workers, live_registry
    ):
        tree_s, _ = self.faulted_setup(data)
        QueryEngine(tree_s, workers=1).knn_batch(queries, k=6)
        serial_counters = live_registry.collect()
        live_registry.reset()
        tree_p, _ = self.faulted_setup(data)
        QueryEngine(tree_p, workers=workers).knn_batch(queries, k=6)
        assert live_registry.collect() == serial_counters


class TestBackendSweep:
    """Property-style sweep of the determinism contract.

    For workers in {1, 2, 4} x backend in {thread, process} x fault
    injection {off, on}: knn and range batch results, the IOStats
    ledger, the fault-context session counters, and every observability
    counter must be bit-identical to the serial (workers=1) run.
    """

    GRID = [
        (1, "thread"),
        (2, "thread"),
        (4, "thread"),
        (2, "process"),
        (4, "process"),
    ]

    def run_once(self, data, queries, workers, backend, faults, registry):
        tree = build_tree(data)
        ctx = None
        if faults:
            inj = ReadFaultInjector()
            inj.fail_always(tree._quant_file.extent_start + 1)
            inj.fail_always(tree._exact_file.extent_start)
            tree.disk.install_fault_injector(inj)
            ctx = tree.use_fault_tolerance()
        with QueryEngine(tree, workers=workers, backend=backend) as engine:
            knn = engine.knn_batch(queries, k=6)
            rng_res = engine.range_batch(queries, 0.35)
        counters = registry.collect()
        registry.reset()
        session = (
            (ctx.retries, ctx.quarantined, ctx.degraded_results,
             ctx.lost_pages)
            if ctx is not None
            else None
        )
        return knn, rng_res, counters, session

    @staticmethod
    def assert_batches_identical(base, got):
        assert len(base) == len(got)
        for b, g in zip(base, got):
            assert np.array_equal(b.ids, g.ids)
            assert np.array_equal(b.distances, g.distances)
            assert b.stats == g.stats
            assert b.degraded == g.degraded
            assert b.intervals == g.intervals
            assert b.lost_pages == g.lost_pages
            if b.certain is None:
                assert g.certain is None
            else:
                assert np.array_equal(b.certain, g.certain)
        assert ledger_tuple(base.stats.io) == ledger_tuple(got.stats.io)
        assert base.stats.pages_read == got.stats.pages_read
        assert base.stats.refinements == got.stats.refinements
        assert base.stats.degraded_results == got.stats.degraded_results
        assert base.stats.lost_pages == got.stats.lost_pages

    @pytest.mark.parametrize("faults", [False, True])
    def test_sweep_is_bit_identical_to_serial(
        self, data, queries, faults, live_registry
    ):
        base_knn, base_rng, base_counters, base_session = self.run_once(
            data, queries, 1, "thread", faults, live_registry
        )
        for workers, backend in self.GRID[1:]:
            knn, rng_res, counters, session = self.run_once(
                data, queries, workers, backend, faults, live_registry
            )
            self.assert_batches_identical(base_knn, knn)
            self.assert_batches_identical(base_rng, rng_res)
            assert session == base_session, (workers, backend)
            assert counters == base_counters, (workers, backend)


class TestDecodedCacheInEngine:
    def test_warm_batch_skips_page_transfers(self, data, queries):
        engine = QueryEngine(build_tree(data), workers=2, decode_cache=1 << 24)
        cold = engine.knn_batch(queries, k=5)
        warm = engine.knn_batch(queries, k=5)
        assert cold.stats.pages_read > 0
        assert warm.stats.pages_read == 0
        assert warm.stats.decoded_pages_reused == cold.stats.pages_read
        assert warm.stats.decode_reuse_rate == 1.0
        # Quantized-page transfers are gone (the third-level refetch
        # may cost one extra seek, so compare blocks, not elapsed).
        assert warm.stats.io.blocks_read < cold.stats.io.blocks_read
        for c, w in zip(cold, warm):
            assert np.array_equal(c.ids, w.ids)
            assert np.array_equal(c.distances, w.distances)

    def test_cache_shared_between_engine_and_single_queries(
        self, data, queries
    ):
        tree = build_tree(data)
        cache = DecodedPageCache(1 << 24)
        engine = QueryEngine(tree, workers=2, decode_cache=cache)
        engine.knn_batch(queries, k=5)
        before = tree.disk.stats.blocks_read
        res = tree.nearest(queries[0], k=5)
        # The single query decoded nothing new at the quantized level:
        # only directory + third-level transfers were charged.
        assert cache.hits > 0
        assert res.ids.size == 5
        assert tree.disk.stats.blocks_read > before  # but not pages

    def test_warm_results_identical_under_chaos(self, data, queries):
        tree = build_tree(data)
        inj = ReadFaultInjector()
        inj.fail_always(tree._quant_file.extent_start + 1)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        engine = QueryEngine(tree, workers=4, decode_cache=1 << 24)
        cold = engine.knn_batch(queries, k=6)
        warm = engine.knn_batch(queries, k=6)
        for c, w in zip(cold, warm):
            assert np.array_equal(c.ids, w.ids)
            assert np.array_equal(c.distances, w.distances)
            assert c.lost_pages == w.lost_pages

    def test_query_engine_forwarding(self, data):
        tree = build_tree(data)
        engine = tree.query_engine(pool=64, workers=3, decode_cache=1 << 20)
        assert engine.workers == 3
        assert engine.backend == "process"  # auto resolves for workers>1
        assert isinstance(engine.pool, BufferPool)
        assert isinstance(engine.decode_cache, DecodedPageCache)
        assert tree.decoded_cache is engine.decode_cache
        threaded = tree.query_engine(workers=2, backend="thread")
        assert threaded.backend == "thread"

    def test_invalid_workers_rejected(self, data):
        with pytest.raises(SearchError):
            QueryEngine(build_tree(data), workers=0)
