"""Parallel batch serving must be bit-identical to serial execution.

The worker pool shards only pure CPU phases; every simulated-I/O charge
and every shared-state side effect stays on the coordinator.  These
tests pin the consequence: for any worker count, a batch returns the
same results, charges the same I/O ledger, and lands the same values in
every observability counter -- including under read-path fault
injection, where degraded results and session counters must also agree.
"""

import numpy as np
import pytest

from repro.core.tree import IQTree
from repro.engine import DecodedPageCache, QueryEngine, WorkerPool
from repro.exceptions import SearchError
from repro.obs.instruments import REGISTRY
from repro.storage.cache import BufferPool
from repro.storage.disk import DiskModel, IOStats, SimulatedDisk
from repro.storage.runtime_faults import ReadFaultInjector


def make_disk() -> SimulatedDisk:
    return SimulatedDisk(
        DiskModel(t_seek=0.0025, t_xfer=0.0002, block_size=2048)
    )


@pytest.fixture
def data(rng) -> np.ndarray:
    return rng.random((1500, 8)).astype(np.float32).astype(np.float64)


@pytest.fixture
def queries(rng) -> np.ndarray:
    return rng.random((13, 8))


def build_tree(data) -> IQTree:
    return IQTree.build(data, disk=make_disk(), optimize=False, fixed_bits=5)


@pytest.fixture
def live_registry():
    REGISTRY.reset()
    REGISTRY.enable()
    try:
        yield REGISTRY
    finally:
        REGISTRY.disable()
        REGISTRY.reset()


def ledger_tuple(io: IOStats) -> tuple:
    return (io.seeks, io.blocks_read, io.blocks_overread, io.elapsed)


class TestWorkerPool:
    def test_workers_must_be_positive(self):
        with pytest.raises(SearchError):
            WorkerPool(0)

    def test_sharding_is_contiguous_balanced_deterministic(self):
        pool = WorkerPool(4)
        shards = pool.shard(list(range(10)))
        assert [len(s) for s in shards] == [3, 3, 2, 2]
        assert [x for s in shards for x in s] == list(range(10))
        assert pool.shard(list(range(10))) == shards  # pure function
        assert pool.shard([]) == []
        assert pool.shard([7]) == [[7]]

    def test_fewer_items_than_workers(self):
        shards = WorkerPool(8).shard([1, 2, 3])
        assert shards == [[1], [2], [3]]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_map_sharded_preserves_item_order(self, workers):
        pool = WorkerPool(workers)
        results, merged = pool.map_sharded(
            lambda shard, led: [x * x for x in shard], range(23)
        )
        assert results == [x * x for x in range(23)]
        assert ledger_tuple(merged) == (0, 0, 0, 0.0)
        pool.close()

    def test_ledgers_merge_in_shard_order(self):
        def charge(shard, ledger):
            for x in shard:
                ledger.seeks += 1
                ledger.blocks_read += x
                ledger.elapsed += 0.5
            return list(shard)

        serial = WorkerPool(1).map_sharded(charge, range(9))
        threaded = WorkerPool(3).map_sharded(charge, range(9))
        assert serial[0] == threaded[0]
        assert ledger_tuple(serial[1]) == ledger_tuple(threaded[1])
        assert threaded[1].seeks == 9
        assert threaded[1].blocks_read == sum(range(9))

    def test_worker_exception_propagates(self):
        def boom(shard, ledger):
            if 5 in shard:
                raise ValueError("shard failure")
            return list(shard)

        with pytest.raises(ValueError, match="shard failure"):
            WorkerPool(3).map_sharded(boom, range(9))

    def test_close_is_idempotent_and_reusable(self):
        pool = WorkerPool(2)
        pool.map_sharded(lambda s, led: list(s), range(4))
        pool.close()
        pool.close()
        results, _ = pool.map_sharded(lambda s, led: list(s), range(4))
        assert results == [0, 1, 2, 3]


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_knn_results_and_ledger_match_serial(
        self, data, queries, workers
    ):
        baseline = QueryEngine(build_tree(data), workers=1)
        base = baseline.knn_batch(queries, k=6)
        engine = QueryEngine(build_tree(data), workers=workers)
        got = engine.knn_batch(queries, k=6)
        assert got.stats.workers == workers
        for b, g in zip(base, got):
            assert np.array_equal(b.ids, g.ids)
            assert np.array_equal(b.distances, g.distances)
            assert b.stats == g.stats
        assert ledger_tuple(base.stats.io) == ledger_tuple(got.stats.io)
        assert base.stats.pages_read == got.stats.pages_read
        assert base.stats.refinements == got.stats.refinements
        engine.close()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_range_results_and_ledger_match_serial(
        self, data, queries, workers
    ):
        base = QueryEngine(build_tree(data), workers=1).range_batch(
            queries, 0.35
        )
        got = QueryEngine(build_tree(data), workers=workers).range_batch(
            queries, 0.35
        )
        for b, g in zip(base, got):
            assert np.array_equal(b.ids, g.ids)
            assert np.array_equal(b.distances, g.distances)
        assert ledger_tuple(base.stats.io) == ledger_tuple(got.stats.io)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_obs_counters_match_serial(
        self, data, queries, workers, live_registry
    ):
        QueryEngine(build_tree(data), workers=1).knn_batch(queries, k=4)
        serial_counters = live_registry.collect()
        live_registry.reset()
        QueryEngine(build_tree(data), workers=workers).knn_batch(
            queries, k=4
        )
        assert live_registry.collect() == serial_counters

    def test_matches_single_query_api(self, data, queries):
        tree = build_tree(data)
        engine = QueryEngine(tree, workers=4)
        result = engine.knn_batch(queries, k=5)
        for query, got in zip(queries, result):
            ref = tree.nearest(query, k=5)
            assert np.array_equal(got.ids, ref.ids)
            assert np.allclose(got.distances, ref.distances)

    def test_pool_accounting_matches_serial(self, data, queries):
        ledgers = []
        for workers in (1, 4):
            tree = build_tree(data)
            engine = QueryEngine(tree, pool=128, workers=workers)
            engine.knn_batch(queries, k=4)
            stats = engine.knn_batch(queries, k=4).stats
            ledgers.append(
                (stats.pool_hits, stats.pool_misses, ledger_tuple(stats.io))
            )
        assert ledgers[0] == ledgers[1]


class TestChaosEquivalence:
    """Fault injection: degraded results must not depend on workers."""

    def faulted_setup(self, data):
        tree = build_tree(data)
        # Aim persistent faults at one quantized and one exact block.
        inj = ReadFaultInjector()
        inj.fail_always(tree._quant_file.extent_start + 1)
        inj.fail_always(tree._exact_file.extent_start)
        tree.disk.install_fault_injector(inj)
        ctx = tree.use_fault_tolerance()
        return tree, ctx

    @pytest.mark.parametrize("workers", [2, 4])
    def test_degraded_batch_matches_serial(self, data, queries, workers):
        tree_s, ctx_s = self.faulted_setup(data)
        base = QueryEngine(tree_s, workers=1).knn_batch(queries, k=6)
        tree_p, ctx_p = self.faulted_setup(data)
        got = QueryEngine(tree_p, workers=workers).knn_batch(queries, k=6)
        for b, g in zip(base, got):
            assert np.array_equal(b.ids, g.ids)
            assert np.array_equal(b.distances, g.distances)
            assert b.degraded == g.degraded
            assert b.intervals == g.intervals
            assert b.lost_pages == g.lost_pages
            if b.certain is None:
                assert g.certain is None
            else:
                assert np.array_equal(b.certain, g.certain)
        assert ledger_tuple(base.stats.io) == ledger_tuple(got.stats.io)
        # Session counters advanced identically.
        assert (
            ctx_s.retries,
            ctx_s.quarantined,
            ctx_s.degraded_results,
            ctx_s.lost_pages,
        ) == (
            ctx_p.retries,
            ctx_p.quarantined,
            ctx_p.degraded_results,
            ctx_p.lost_pages,
        )
        assert base.stats.degraded and got.stats.degraded

    @pytest.mark.parametrize("workers", [2, 4])
    def test_chaos_obs_counters_match_serial(
        self, data, queries, workers, live_registry
    ):
        tree_s, _ = self.faulted_setup(data)
        QueryEngine(tree_s, workers=1).knn_batch(queries, k=6)
        serial_counters = live_registry.collect()
        live_registry.reset()
        tree_p, _ = self.faulted_setup(data)
        QueryEngine(tree_p, workers=workers).knn_batch(queries, k=6)
        assert live_registry.collect() == serial_counters


class TestDecodedCacheInEngine:
    def test_warm_batch_skips_page_transfers(self, data, queries):
        engine = QueryEngine(build_tree(data), workers=2, decode_cache=1 << 24)
        cold = engine.knn_batch(queries, k=5)
        warm = engine.knn_batch(queries, k=5)
        assert cold.stats.pages_read > 0
        assert warm.stats.pages_read == 0
        assert warm.stats.decoded_pages_reused == cold.stats.pages_read
        assert warm.stats.decode_reuse_rate == 1.0
        # Quantized-page transfers are gone (the third-level refetch
        # may cost one extra seek, so compare blocks, not elapsed).
        assert warm.stats.io.blocks_read < cold.stats.io.blocks_read
        for c, w in zip(cold, warm):
            assert np.array_equal(c.ids, w.ids)
            assert np.array_equal(c.distances, w.distances)

    def test_cache_shared_between_engine_and_single_queries(
        self, data, queries
    ):
        tree = build_tree(data)
        cache = DecodedPageCache(1 << 24)
        engine = QueryEngine(tree, workers=2, decode_cache=cache)
        engine.knn_batch(queries, k=5)
        before = tree.disk.stats.blocks_read
        res = tree.nearest(queries[0], k=5)
        # The single query decoded nothing new at the quantized level:
        # only directory + third-level transfers were charged.
        assert cache.hits > 0
        assert res.ids.size == 5
        assert tree.disk.stats.blocks_read > before  # but not pages

    def test_warm_results_identical_under_chaos(self, data, queries):
        tree = build_tree(data)
        inj = ReadFaultInjector()
        inj.fail_always(tree._quant_file.extent_start + 1)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        engine = QueryEngine(tree, workers=4, decode_cache=1 << 24)
        cold = engine.knn_batch(queries, k=6)
        warm = engine.knn_batch(queries, k=6)
        for c, w in zip(cold, warm):
            assert np.array_equal(c.ids, w.ids)
            assert np.array_equal(c.distances, w.distances)
            assert c.lost_pages == w.lost_pages

    def test_query_engine_forwarding(self, data):
        tree = build_tree(data)
        engine = tree.query_engine(pool=64, workers=3, decode_cache=1 << 20)
        assert engine.workers == 3
        assert isinstance(engine.pool, BufferPool)
        assert isinstance(engine.decode_cache, DecodedPageCache)
        assert tree.decoded_cache is engine.decode_cache

    def test_invalid_workers_rejected(self, data):
        with pytest.raises(SearchError):
            QueryEngine(build_tree(data), workers=0)
