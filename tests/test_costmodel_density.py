"""Tests for densities and nearest-neighbor radii (eqs. 6-7, 13-14)."""

import numpy as np
import pytest

from repro.exceptions import CostModelError
from repro.costmodel.density import (
    fractal_nn_radius,
    fractal_point_density,
    knn_radius,
    nn_radius,
    point_density,
)
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM


class TestPointDensity:
    def test_unit_box(self):
        assert point_density(100, np.ones(4)) == pytest.approx(100.0)

    def test_scales_inverse_with_volume(self):
        d1 = point_density(100, np.array([1.0, 1.0]))
        d2 = point_density(100, np.array([2.0, 2.0]))
        assert d1 == pytest.approx(4 * d2)

    def test_degenerate_side_guarded(self):
        # A zero side length must not produce an infinite density.
        d = point_density(10, np.array([1.0, 0.0]))
        assert np.isfinite(d)
        assert d > 0

    def test_rejects_nonpositive_count(self):
        with pytest.raises(CostModelError):
            point_density(0, np.ones(2))


class TestFractalDensity:
    def test_equals_plain_when_df_is_d(self):
        sides = np.array([0.5, 0.25, 0.75])
        assert fractal_point_density(50, sides, 3.0) == pytest.approx(
            point_density(50, sides)
        )

    def test_lower_df_raises_density_for_small_volumes(self):
        sides = np.full(4, 0.1)  # volume < 1
        shallow = fractal_point_density(50, sides, 2.0)
        full = fractal_point_density(50, sides, 4.0)
        assert shallow < full  # sides < 1: raising to DF/d < 1 grows them

    def test_rejects_bad_df(self):
        with pytest.raises(CostModelError):
            fractal_point_density(10, np.ones(3), 0.0)
        with pytest.raises(CostModelError):
            fractal_point_density(10, np.ones(3), 3.5)


class TestNNRadius:
    def test_ball_contains_one_expected_point(self):
        density = 1000.0
        for d in (2, 8, 16):
            r = nn_radius(density, d)
            assert density * EUCLIDEAN.ball_volume(r, d) == pytest.approx(1.0)

    def test_max_metric_variant(self):
        r = nn_radius(1000.0, 4, MAXIMUM)
        assert 1000.0 * MAXIMUM.ball_volume(r, 4) == pytest.approx(1.0)

    def test_radius_grows_with_k(self):
        rs = [knn_radius(500.0, 6, k) for k in (1, 5, 20)]
        assert rs[0] < rs[1] < rs[2]

    def test_knn_volume_contains_k(self):
        r = knn_radius(500.0, 6, 7)
        assert 500.0 * EUCLIDEAN.ball_volume(r, 6) == pytest.approx(7.0)

    def test_radius_shrinks_with_density(self):
        assert nn_radius(1000.0, 8) < nn_radius(10.0, 8)

    def test_invalid_inputs(self):
        with pytest.raises(CostModelError):
            nn_radius(0.0, 4)
        with pytest.raises(CostModelError):
            knn_radius(1.0, 4, 0)


class TestFractalNNRadius:
    def test_equals_plain_when_df_is_d(self):
        r_plain = nn_radius(200.0, 5)
        r_fractal = fractal_nn_radius(200.0, 5, 5.0)
        assert r_fractal == pytest.approx(r_plain)

    def test_defining_identity(self):
        # The radius solves rho_F * V_ball(r) ** (D_F / d) = k: the
        # fractal growth law of enclosed point counts (eqs. 13-14).
        density_f, d, df, k = 73.0, 8, 2.5, 3
        r = fractal_nn_radius(density_f, d, df, k=k)
        v = EUCLIDEAN.ball_volume(r, d)
        assert density_f * v ** (df / d) == pytest.approx(k)

    def test_invalid(self):
        with pytest.raises(CostModelError):
            fractal_nn_radius(1.0, 4, 5.0)
        with pytest.raises(CostModelError):
            fractal_nn_radius(-1.0, 4, 2.0)
