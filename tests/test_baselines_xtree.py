"""Tests for the X-tree baseline."""

import numpy as np
import pytest

from repro.exceptions import BuildError, SearchError
from repro.baselines.xtree import XTree
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM
from repro.storage.disk import SimulatedDisk
from tests.conftest import brute_force_knn


@pytest.fixture
def xtree(uniform_points, small_disk):
    return XTree(uniform_points, disk=small_disk)


class TestStructure:
    def test_leaf_capacity_respected(self, xtree):
        for leaf in xtree._iter_leaves(xtree._root):
            assert leaf.indices.size <= xtree._leaf_capacity

    def test_all_points_in_exactly_one_leaf(self, xtree, uniform_points):
        seen = np.concatenate(
            [leaf.indices for leaf in xtree._iter_leaves(xtree._root)]
        )
        assert np.array_equal(np.sort(seen), np.arange(len(uniform_points)))

    def test_mbrs_nest(self, xtree):
        stack = [xtree._root]
        while stack:
            node = stack.pop()
            for child in node.children:
                assert node.mbr.contains_mbr(child.mbr)
                if hasattr(child, "children"):
                    stack.append(child)

    def test_height_positive(self, xtree):
        assert xtree.height() >= 1

    def test_bulk_load_has_no_supernodes(self, xtree):
        assert xtree.n_supernodes() == 0


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 5, 12])
    def test_knn_matches_brute_force(self, xtree, rng, k):
        q = rng.random(8)
        answer = xtree.nearest(q, k=k)
        _ids, dists = brute_force_knn(xtree.points, q, k, EUCLIDEAN)
        assert np.allclose(answer.distances, dists)

    def test_max_metric(self, uniform_points):
        xt = XTree(uniform_points, disk=SimulatedDisk(), metric=MAXIMUM)
        q = np.full(8, 0.6)
        answer = xt.nearest(q, k=2)
        _ids, dists = brute_force_knn(xt.points, q, 2, MAXIMUM)
        assert np.allclose(answer.distances, dists)

    def test_range_query(self, xtree, rng):
        q = rng.random(8)
        answer = xtree.range_query(q, 0.5)
        dists = EUCLIDEAN.distances(q, xtree.points)
        expected = set(np.flatnonzero(dists <= 0.5).tolist())
        assert set(answer.ids.tolist()) == expected

    def test_clustered_data(self, clustered_points, rng):
        xt = XTree(clustered_points, disk=SimulatedDisk())
        q = rng.random(6)
        answer = xt.nearest(q, k=3)
        _ids, dists = brute_force_knn(xt.points, q, 3, EUCLIDEAN)
        assert np.allclose(answer.distances, dists)


class TestIOPattern:
    def test_selective_on_clustered_data(self, clustered_points):
        """On clustered low-d data the X-tree must visit few leaves."""
        xt = XTree(clustered_points, disk=SimulatedDisk())
        xt.disk.park()
        answer = xt.nearest(np.full(6, 0.2))
        n_leaves = xt.n_leaves()
        # blocks read = directory nodes + visited leaves << all leaves.
        assert answer.io.blocks_read < n_leaves * 0.5 + xt.height() + 1

    def test_each_page_read_is_random(self, xtree, rng):
        xtree.disk.park()
        answer = xtree.nearest(rng.random(8))
        # The X-tree does not batch reads: seeks track block reads
        # (adjacent leaves occasionally read back-to-back).
        assert answer.io.seeks >= answer.io.blocks_read * 0.3
        assert answer.io.blocks_overread == 0


class TestInsert:
    def test_inserted_point_found(self, xtree):
        p = np.full(8, 0.123)
        new_id = xtree.insert(p)
        answer = xtree.nearest(p, k=1)
        assert answer.ids[0] == new_id

    def test_many_inserts_stay_correct(self, rng):
        data = rng.random((300, 4)).astype(np.float32).astype(np.float64)
        xt = XTree(data, disk=SimulatedDisk())
        for _ in range(250):
            xt.insert(rng.random(4))
        for _ in range(5):
            q = rng.random(4)
            answer = xt.nearest(q, k=4)
            _ids, dists = brute_force_knn(xt.points, q, 4, EUCLIDEAN)
            assert np.allclose(answer.distances, dists)

    def test_inserts_grow_leaves(self, rng, small_disk):
        data = rng.random((100, 3)).astype(np.float32).astype(np.float64)
        xt = XTree(data, disk=small_disk)
        before = xt.n_leaves()
        for _ in range(300):
            xt.insert(rng.random(3))
        assert xt.n_leaves() > before

    def test_structure_valid_after_inserts(self, rng):
        data = rng.random((200, 5)).astype(np.float32).astype(np.float64)
        xt = XTree(data, disk=SimulatedDisk())
        for _ in range(200):
            xt.insert(rng.random(5))
        seen = np.concatenate(
            [leaf.indices for leaf in xt._iter_leaves(xt._root)]
        )
        assert np.array_equal(np.sort(seen), np.arange(400))
        for leaf in xt._iter_leaves(xt._root):
            pts = xt.points[leaf.indices]
            assert np.all(pts >= leaf.mbr.lower - 1e-9)
            assert np.all(pts <= leaf.mbr.upper + 1e-9)

    def test_skewed_inserts_may_create_supernodes(self, rng):
        data = rng.random((50, 8)).astype(np.float32).astype(np.float64)
        xt = XTree(data, disk=SimulatedDisk())
        # Insert many points on a diagonal line: splits overlap badly in
        # high-d, the condition that triggers supernodes.
        t = rng.random(600)
        for ti in t:
            xt.insert(np.full(8, ti))
        q = np.full(8, 0.5)
        answer = xt.nearest(q, k=3)
        _ids, dists = brute_force_knn(xt.points, q, 3, EUCLIDEAN)
        assert np.allclose(answer.distances, dists)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            XTree(np.empty((0, 4)))

    def test_bad_query(self, xtree):
        with pytest.raises(SearchError):
            xtree.nearest(np.zeros(3))
        with pytest.raises(SearchError):
            xtree.nearest(np.zeros(8), k=0)
        with pytest.raises(SearchError):
            xtree.insert(np.zeros(5))
