"""Tests for page serialization round trips and capacity math."""

import numpy as np
import pytest

from repro.exceptions import PageOverflowError, StorageError
from repro.storage.serializer import (
    decode_directory,
    decode_exact_record,
    decode_quantized_page,
    directory_entry_size,
    encode_directory,
    encode_exact_record,
    encode_quantized_page,
    exact_point_record_size,
    quantized_page_capacity,
)


class TestCapacities:
    def test_directory_entry_size(self):
        # 16-d: 2 * 4 * 16 MBR bytes + 16 reference bytes.
        assert directory_entry_size(16) == 144

    def test_exact_point_record_size(self):
        assert exact_point_record_size(16) == 68

    def test_quantized_capacity_monotone_in_bits(self):
        caps = [
            quantized_page_capacity(8192, 16, b) for b in range(1, 33)
        ]
        assert all(a >= b for a, b in zip(caps, caps[1:]))

    def test_capacity_known_value(self):
        # (8192 - 8) * 8 bits / (16 dims * 1 bit) = 4092 points.
        assert quantized_page_capacity(8192, 16, 1) == 4092

    def test_exact_capacity_includes_id(self):
        # 32-bit pages store ids inline: (8192 - 8) // 68.
        assert quantized_page_capacity(8192, 16, 32) == (8192 - 8) // 68

    def test_invalid_bits(self):
        with pytest.raises(StorageError):
            quantized_page_capacity(8192, 16, 0)
        with pytest.raises(StorageError):
            quantized_page_capacity(8192, 16, 33)


class TestQuantizedPageRoundTrip:
    @pytest.mark.parametrize("bits", [1, 2, 5, 7, 8, 13, 31])
    def test_code_page_roundtrip(self, bits, rng):
        m, d = 37, 6
        codes = rng.integers(0, 2**bits, size=(m, d), dtype=np.uint64)
        codes = codes.astype(np.uint32)
        payload = encode_quantized_page(codes, bits, 8192)
        got, got_bits, ids, aux = decode_quantized_page(payload, d)
        assert got_bits == bits
        assert ids is None
        assert np.array_equal(got, codes)

    def test_exact_page_roundtrip(self, rng):
        m, d = 20, 5
        points = rng.random((m, d)).astype(np.float32).astype(np.float64)
        ids = rng.integers(0, 10**6, size=m)
        payload = encode_quantized_page(points, 32, 8192, ids=ids)
        got, bits, got_ids, aux = decode_quantized_page(payload, d)
        assert bits == 32
        assert np.array_equal(got, points)
        assert np.array_equal(got_ids, ids)

    def test_exact_page_requires_ids(self, rng):
        points = rng.random((3, 2))
        with pytest.raises(StorageError):
            encode_quantized_page(points, 32, 8192)

    def test_code_page_rejects_ids(self, rng):
        codes = np.zeros((3, 2), dtype=np.uint32)
        with pytest.raises(StorageError):
            encode_quantized_page(codes, 4, 8192, ids=np.arange(3))

    def test_overflow_detected(self):
        codes = np.zeros((5000, 16), dtype=np.uint32)
        with pytest.raises(PageOverflowError):
            encode_quantized_page(codes, 2, 8192)

    def test_fits_exactly_at_capacity(self):
        cap = quantized_page_capacity(8192, 16, 2)
        codes = np.full((cap, 16), 3, dtype=np.uint32)
        payload = encode_quantized_page(codes, 2, 8192)
        assert len(payload) <= 8192
        got, _, _, _ = decode_quantized_page(payload, 16)
        assert np.array_equal(got, codes)

    def test_empty_payload_rejected(self):
        with pytest.raises(StorageError):
            decode_quantized_page(b"\x01", 4)


class TestExactRecordRoundTrip:
    def test_roundtrip(self, rng):
        m, d = 13, 9
        points = rng.random((m, d)).astype(np.float32).astype(np.float64)
        ids = rng.integers(0, 2**31, size=m)
        payload = encode_exact_record(points, ids)
        assert len(payload) == m * exact_point_record_size(d)
        got_pts, got_ids = decode_exact_record(payload, m, d)
        assert np.array_equal(got_pts, points)
        assert np.array_equal(got_ids, ids)

    def test_single_point_slice(self, rng):
        """Each point's record is self-contained at a fixed offset."""
        m, d = 8, 4
        points = rng.random((m, d)).astype(np.float32).astype(np.float64)
        ids = np.arange(100, 100 + m)
        payload = encode_exact_record(points, ids)
        record = exact_point_record_size(d)
        for i in range(m):
            chunk = payload[i * record : (i + 1) * record]
            pt, pid = decode_exact_record(chunk, 1, d)
            assert np.array_equal(pt[0], points[i])
            assert pid[0] == ids[i]

    def test_shape_mismatch_rejected(self, rng):
        with pytest.raises(StorageError):
            encode_exact_record(rng.random((3, 2)), np.arange(4))

    def test_truncated_payload_rejected(self):
        with pytest.raises(StorageError):
            decode_exact_record(b"\x00" * 10, 2, 4)


class TestDirectoryRoundTrip:
    def test_roundtrip(self, rng):
        n, d = 57, 7
        lowers = rng.random((n, d)).astype(np.float32).astype(np.float64)
        uppers = lowers + rng.random((n, d)).astype(np.float32)
        uppers = uppers.astype(np.float32).astype(np.float64)
        quant = np.arange(n)
        firsts = rng.integers(0, 1000, size=n)
        counts = rng.integers(1, 10, size=n)
        points = rng.integers(1, 500, size=n)
        blocks = encode_directory(
            lowers, uppers, quant, firsts, counts, points, 2048
        )
        got = decode_directory(blocks, d, n)
        assert np.array_equal(got["lowers"], lowers)
        assert np.array_equal(got["uppers"], uppers)
        assert np.array_equal(got["quant_pages"], quant)
        assert np.array_equal(got["exact_firsts"], firsts)
        assert np.array_equal(got["exact_counts"], counts)
        assert np.array_equal(got["point_counts"], points)

    def test_entries_do_not_straddle_blocks(self, rng):
        n, d = 100, 16  # entry = 144 bytes; 14 per 2048-byte block
        lowers = np.zeros((n, d))
        uppers = np.ones((n, d))
        blocks = encode_directory(
            lowers,
            uppers,
            np.arange(n),
            np.zeros(n),
            np.zeros(n),
            np.ones(n),
            2048,
        )
        per_block = 2048 // 144
        assert len(blocks) == -(-n // per_block)
        assert all(len(b) % 144 == 0 for b in blocks)

    def test_truncated_blocks_rejected(self):
        blocks = encode_directory(
            np.zeros((4, 2)),
            np.ones((4, 2)),
            np.arange(4),
            np.zeros(4),
            np.zeros(4),
            np.ones(4),
            2048,
        )
        with pytest.raises(StorageError):
            decode_directory(blocks, 2, 5)
