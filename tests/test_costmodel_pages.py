"""Tests for the directory-level cost components (eqs. 16-22)."""

import pytest

from repro.exceptions import CostModelError
from repro.costmodel.pages import (
    expected_page_accesses,
    first_level_cost,
    optimized_read_cost,
)
from repro.geometry.metrics import MAXIMUM
from repro.storage.disk import DiskModel


class TestExpectedPageAccesses:
    def test_within_bounds(self):
        k = expected_page_accesses(100, 10_000, 8)
        assert 1.0 <= k <= 100.0

    def test_at_least_the_pivot(self):
        # With enormous selectivity the floor of one page holds.
        k = expected_page_accesses(10, 10_000_000, 2)
        assert k >= 1.0

    def test_grows_with_dimension(self):
        """The curse: more dimensions -> larger accessed fraction."""
        ks = [
            expected_page_accesses(200, 50_000, d) / 200
            for d in (2, 8, 16)
        ]
        assert ks[0] < ks[1] < ks[2]

    def test_grows_with_k_neighbors(self):
        k1 = expected_page_accesses(200, 50_000, 8, k=1)
        k10 = expected_page_accesses(200, 50_000, 8, k=10)
        assert k10 >= k1

    def test_fractal_dim_reduces_accesses(self):
        """Clustered (low-D_F) data keeps indexes selective."""
        full = expected_page_accesses(500, 100_000, 16)
        clustered = expected_page_accesses(
            500, 100_000, 16, fractal_dim=3.0
        )
        assert clustered < full

    def test_max_metric_supported(self):
        k = expected_page_accesses(100, 10_000, 6, metric=MAXIMUM)
        assert 1.0 <= k <= 100.0

    def test_invalid_inputs(self):
        with pytest.raises(CostModelError):
            expected_page_accesses(0, 100, 4)
        with pytest.raises(CostModelError):
            expected_page_accesses(10, 100, 4, fractal_dim=9.0)
        with pytest.raises(CostModelError):
            expected_page_accesses(10, 100, 4, k=0)


class TestOptimizedReadCost:
    def _model(self):
        return DiskModel(t_seek=0.010, t_xfer=0.001)

    def test_zero_accesses_costs_nothing(self):
        assert optimized_read_cost(100, 0.0, self._model()) == 0.0

    def test_full_scan_limit(self):
        model = self._model()
        cost = optimized_read_cost(100, 100, model)
        assert cost == pytest.approx(model.t_seek + 100 * model.t_xfer)

    def test_sparse_limit_is_random_reads(self):
        model = self._model()
        # 2 pages of 1e6: gaps are huge, each access pays seek + xfer.
        cost = optimized_read_cost(1_000_000, 2.0, model)
        expected = model.t_seek + 2 * (model.t_seek + model.t_xfer)
        assert cost == pytest.approx(expected, rel=1e-3)

    def test_monotone_in_accessed_count(self):
        model = self._model()
        costs = [
            optimized_read_cost(1000, k, model)
            for k in (1, 10, 100, 500, 1000)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(costs, costs[1:]))

    def test_never_exceeds_either_extreme_strategy(self):
        model = self._model()
        for n, k in ((100, 10), (1000, 50), (500, 400)):
            cost = optimized_read_cost(n, k, model)
            scan = model.t_seek + n * model.t_xfer
            random = model.t_seek + k * (model.t_seek + model.t_xfer)
            assert cost <= max(scan, random) + 1e-9
            # It should beat pure random reads when k is large enough
            # to cluster, and never be much worse than the better one.
            assert cost <= random + 1e-9 or cost <= scan + 1e-9

    def test_clamps_excess_k(self):
        model = self._model()
        assert optimized_read_cost(10, 50, model) == pytest.approx(
            optimized_read_cost(10, 10, model)
        )

    def test_invalid(self):
        with pytest.raises(CostModelError):
            optimized_read_cost(0, 1, self._model())


class TestFirstLevelCost:
    def test_linear_in_pages(self):
        model = DiskModel(t_seek=0.01, t_xfer=0.001, block_size=2048)
        # 2048 / 144 = 14 entries per block (16-d entries).
        c14 = first_level_cost(14, 16, model)
        c15 = first_level_cost(15, 16, model)
        assert c14 == pytest.approx(model.t_seek + model.t_xfer)
        assert c15 == pytest.approx(model.t_seek + 2 * model.t_xfer)

    def test_scales_with_dimension(self):
        model = DiskModel()
        assert first_level_cost(1000, 32, model) > first_level_cost(
            1000, 4, model
        )

    def test_invalid(self):
        with pytest.raises(CostModelError):
            first_level_cost(0, 4, DiskModel())
