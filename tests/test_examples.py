"""Smoke checks on the example scripts.

The examples run at demo scale (tens of thousands of points), so the
test suite compiles them all and executes the fastest two end-to-end.
"""

import py_compile
import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamples:
    def test_examples_exist(self):
        names = {path.name for path in ALL_EXAMPLES}
        assert {
            "quickstart.py",
            "image_color_search.py",
            "cad_similarity.py",
            "weather_station_neighbors.py",
            "compare_methods.py",
            "dynamic_maintenance.py",
        } <= names

    @pytest.mark.parametrize(
        "path", ALL_EXAMPLES, ids=[p.name for p in ALL_EXAMPLES]
    )
    def test_example_compiles(self, path):
        py_compile.compile(str(path), doraise=True)

    @pytest.mark.parametrize(
        "path", ALL_EXAMPLES, ids=[p.name for p in ALL_EXAMPLES]
    )
    def test_example_has_module_docstring(self, path):
        source = path.read_text()
        assert source.lstrip().startswith('"""'), path.name

    def test_quickstart_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["quickstart.py"])
        runpy.run_path(
            str(EXAMPLES_DIR / "quickstart.py"), run_name="__main__"
        )
        out = capsys.readouterr().out
        assert "built: IQTree" in out
        assert "inserted point" in out

    def test_dynamic_maintenance_runs(self, capsys, monkeypatch):
        monkeypatch.setattr(sys, "argv", ["dynamic_maintenance.py"])
        runpy.run_path(
            str(EXAMPLES_DIR / "dynamic_maintenance.py"),
            run_name="__main__",
        )
        out = capsys.readouterr().out
        assert "verified against brute force" in out
        assert "after reoptimize" in out
