"""Hypothesis property tests on the B+-tree, pyramid, and SS-tree."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines.pyramid import PyramidTechnique
from repro.baselines.sstree import SSTree
from repro.core.tree import canonicalize
from repro.geometry.metrics import EUCLIDEAN
from repro.storage.bptree import BPlusTree
from repro.storage.disk import DiskModel, SimulatedDisk


def _small_disk():
    return SimulatedDisk(
        DiskModel(t_seek=0.01, t_xfer=0.001, block_size=512)
    )


class TestBPlusTreeProperties:
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(1, 300),
        lo=st.floats(-2, 2, allow_nan=False),
        width=st.floats(0, 4, allow_nan=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_range_scan_matches_filter(self, seed, n, lo, width):
        rng = np.random.default_rng(seed)
        keys = rng.random(n) * 4 - 2
        coords = canonicalize(rng.random((n, 3)))
        ids = np.arange(n)
        tree = BPlusTree(keys, coords, ids, _small_disk())
        hi = lo + width
        _k, _c, got = tree.range_scan(lo, hi)
        expected = ids[(keys >= lo) & (keys <= hi)]
        assert set(got.tolist()) == set(expected.tolist())

    @given(seed=st.integers(0, 2**16), n=st.integers(1, 200))
    @settings(max_examples=25, deadline=None)
    def test_full_scan_sorted_and_complete(self, seed, n):
        rng = np.random.default_rng(seed)
        keys = rng.random(n)
        tree = BPlusTree(
            keys, canonicalize(rng.random((n, 2))), np.arange(n),
            _small_disk(),
        )
        got_keys, _c, got_ids = tree.range_scan(-1, 2)
        assert got_keys.size == n
        assert np.all(np.diff(got_keys) >= 0)


class TestPyramidProperties:
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(5, 150),
        dim=st.integers(2, 6),
        k=st.integers(1, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_knn_matches_brute_force(self, seed, n, dim, k):
        rng = np.random.default_rng(seed)
        data = canonicalize(rng.random((n, dim)))
        k = min(k, n)
        p = PyramidTechnique(data, disk=_small_disk())
        query = canonicalize(rng.random(dim) * 1.4 - 0.2)
        answer = p.nearest(query, k=k)
        expected = np.sort(EUCLIDEAN.distances(query, p.points))[:k]
        assert np.allclose(answer.distances, expected)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=15, deadline=None)
    def test_window_query_exact(self, seed):
        rng = np.random.default_rng(seed)
        data = canonicalize(rng.random((120, 4)))
        p = PyramidTechnique(data, disk=_small_disk())
        lower = canonicalize(rng.random(4) * 0.6)
        upper = lower + rng.random(4) * 0.5
        answer = p.window_query(lower, upper)
        expected = np.flatnonzero(
            np.all((p.points >= lower) & (p.points <= upper), axis=1)
        )
        assert set(answer.ids.tolist()) == set(expected.tolist())


class TestSSTreeProperties:
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(5, 200),
        dim=st.integers(1, 6),
        k=st.integers(1, 3),
    )
    @settings(max_examples=20, deadline=None)
    def test_knn_matches_brute_force(self, seed, n, dim, k):
        rng = np.random.default_rng(seed)
        data = canonicalize(rng.random((n, dim)))
        k = min(k, n)
        tree = SSTree(data, disk=_small_disk())
        query = canonicalize(rng.random(dim) * 1.4 - 0.2)
        answer = tree.nearest(query, k=k)
        expected = np.sort(EUCLIDEAN.distances(query, tree.points))[:k]
        assert np.allclose(answer.distances, expected)

    @given(seed=st.integers(0, 2**16), radius=st.floats(0, 1.2))
    @settings(max_examples=15, deadline=None)
    def test_range_matches_brute_force(self, seed, radius):
        rng = np.random.default_rng(seed)
        data = canonicalize(rng.random((100, 4)))
        tree = SSTree(data, disk=_small_disk())
        query = canonicalize(rng.random(4))
        answer = tree.range_query(query, radius)
        expected = set(
            np.flatnonzero(
                EUCLIDEAN.distances(query, tree.points) <= radius
            ).tolist()
        )
        assert set(answer.ids.tolist()) == expected
