"""Property-based tests (hypothesis) on the core data structures."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.tree import IQTree, canonicalize
from repro.geometry.mbr import MBR
from repro.geometry.metrics import EUCLIDEAN
from repro.exceptions import QuantizationError
from repro.quantization.bitpack import (
    pack_codes,
    unpack_codes,
    unpack_codes_bulk,
)
from repro.quantization.grid import GridQuantizer
from repro.storage.disk import DiskModel
from repro.storage.scheduler import (
    batched_fetch_cost,
    plan_batched_fetch,
)
from repro.storage.serializer import (
    decode_exact_record,
    encode_exact_record,
)


finite_coords = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, width=32
)


def points_arrays(min_rows=1, max_rows=40, min_dim=1, max_dim=6):
    return hnp.arrays(
        dtype=np.float64,
        shape=st.tuples(
            st.integers(min_rows, max_rows), st.integers(min_dim, max_dim)
        ),
        elements=finite_coords,
    )


class TestBitpackProperties:
    @given(
        bits=st.integers(1, 31),
        shape=st.tuples(st.integers(1, 30), st.integers(1, 8)),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip(self, bits, shape, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 2**bits, size=shape, dtype=np.uint64)
        codes = codes.astype(np.uint32)
        back = unpack_codes(pack_codes(codes, bits), bits, *shape)
        assert np.array_equal(back, codes)

    @given(
        shape=st.tuples(st.integers(1, 30), st.integers(1, 8)),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_full_width_roundtrip(self, shape, seed):
        """bits=32 must round-trip the entire uint32 range."""
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 2**32, size=shape, dtype=np.uint64)
        codes = codes.astype(np.uint32)
        codes.flat[0] = 0
        codes.flat[-1] = 2**32 - 1
        back = unpack_codes(pack_codes(codes, 32), 32, *shape)
        assert np.array_equal(back, codes)

    @given(
        bits=st.integers(1, 32),
        shape=st.tuples(st.integers(1, 20), st.integers(1, 6)),
        cut=st.integers(1, 64),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_truncated_payload_always_rejected(self, bits, shape, cut, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 2**bits, size=shape, dtype=np.uint64)
        payload = pack_codes(codes.astype(np.uint32), bits)
        short = payload[: -min(cut, len(payload))]
        with pytest.raises(QuantizationError):
            unpack_codes(short, bits, *shape)
        with pytest.raises(QuantizationError):
            unpack_codes_bulk([short], bits, [shape[0]], shape[1])

    @given(
        bits=st.integers(1, 32),
        sizes=st.lists(st.integers(0, 25), min_size=1, max_size=6),
        dim=st.integers(1, 6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=60, deadline=None)
    def test_bulk_matches_scalar_unpack(self, bits, sizes, dim, seed):
        rng = np.random.default_rng(seed)
        pages = [
            rng.integers(0, 2**bits, size=(m, dim), dtype=np.uint64).astype(
                np.uint32
            )
            for m in sizes
        ]
        payloads = [pack_codes(c, bits) for c in pages]
        bulk = unpack_codes_bulk(payloads, bits, sizes, dim)
        assert len(bulk) == len(pages)
        for codes, out in zip(pages, bulk):
            assert out.dtype == np.uint32
            assert np.array_equal(out, codes)


class TestMBRProperties:
    @given(points=points_arrays())
    @settings(max_examples=60, deadline=None)
    def test_of_points_contains_all(self, points):
        box = MBR.of_points(points)
        for p in points:
            assert box.contains_point(p)

    @given(points=points_arrays(min_rows=2))
    @settings(max_examples=60, deadline=None)
    def test_mindist_maxdist_bracket(self, points):
        box = MBR.of_points(points[1:])
        query = points[0]
        dmin = box.mindist(query)
        dmax = box.maxdist(query)
        dists = EUCLIDEAN.distances(query, points[1:])
        assert np.all(dists >= dmin - 1e-6 * max(1.0, dmax))
        assert np.all(dists <= dmax + 1e-6 * max(1.0, dmax))

    @given(points=points_arrays(min_rows=4))
    @settings(max_examples=40, deadline=None)
    def test_union_contains_both(self, points):
        half = len(points) // 2
        a = MBR.of_points(points[:half]) if half else None
        if a is None:
            return
        b = MBR.of_points(points[half:])
        u = a.union(b)
        assert u.contains_mbr(a) and u.contains_mbr(b)


class TestGridQuantizerProperties:
    @given(
        bits=st.integers(1, 12),
        seed=st.integers(0, 2**16),
        n=st.integers(1, 60),
        dim=st.integers(1, 6),
    )
    @settings(max_examples=50, deadline=None)
    def test_cells_contain_points_and_bounds_bracket(
        self, bits, seed, n, dim
    ):
        rng = np.random.default_rng(seed)
        pts = canonicalize(rng.random((n, dim)) * 10 - 5)
        box = MBR.of_points(pts)
        q = GridQuantizer(box, bits)
        codes = q.encode(pts)
        lowers, uppers = q.cell_bounds(codes)
        assert np.all(pts >= lowers - 1e-9)
        assert np.all(pts <= uppers + 1e-9)
        query = canonicalize(rng.random(dim) * 12 - 6)
        true = EUCLIDEAN.distances(query, pts)
        lo = q.cell_mindist(query, codes)
        hi = q.cell_maxdist(query, codes)
        assert np.all(lo <= true + 1e-9)
        assert np.all(true <= hi + 1e-9)


class TestSchedulerProperties:
    @given(
        blocks=st.sets(st.integers(0, 400), min_size=1, max_size=40),
        window=st.floats(0, 50, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_plan_covers_exactly_requested(self, blocks, window):
        wanted = sorted(blocks)
        runs = list(plan_batched_fetch(wanted, window))
        covered = []
        total_wanted = 0
        prev_end = -1
        for start, count, wanted_count in runs:
            assert start > prev_end
            prev_end = start + count - 1
            covered.extend(range(start, start + count))
            total_wanted += wanted_count
        assert set(wanted) <= set(covered)
        assert total_wanted == len(wanted)
        # First and last block of every run are wanted (no waste ends).
        for start, count, _w in runs:
            assert start in blocks
            assert start + count - 1 in blocks

    @given(blocks=st.sets(st.integers(0, 300), min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_cost_no_worse_than_extremes(self, blocks):
        model = DiskModel(t_seek=0.01, t_xfer=0.001)
        wanted = sorted(blocks)
        cost = batched_fetch_cost(wanted, model)
        random_cost = model.random_read_time(len(wanted))
        span_scan = model.scan_time(wanted[-1] - wanted[0] + 1)
        assert cost <= random_cost + 1e-12
        assert cost <= span_scan + 1e-12


class TestSerializerProperties:
    @given(
        n=st.integers(1, 40),
        dim=st.integers(1, 8),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=50, deadline=None)
    def test_exact_record_roundtrip(self, n, dim, seed):
        rng = np.random.default_rng(seed)
        pts = canonicalize(rng.random((n, dim)) * 100 - 50)
        ids = rng.integers(0, 2**31, size=n)
        back_pts, back_ids = decode_exact_record(
            encode_exact_record(pts, ids), n, dim
        )
        assert np.array_equal(back_pts, pts)
        assert np.array_equal(back_ids, ids)


class TestSearchProperties:
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(20, 300),
        dim=st.integers(2, 8),
        k=st.integers(1, 5),
    )
    @settings(max_examples=15, deadline=None)
    def test_iqtree_knn_matches_brute_force(self, seed, n, dim, k):
        from repro.storage.disk import SimulatedDisk

        rng = np.random.default_rng(seed)
        data = canonicalize(rng.random((n, dim)))
        disk = SimulatedDisk(
            DiskModel(t_seek=0.01, t_xfer=0.001, block_size=512)
        )
        tree = IQTree.build(data, disk=disk)
        query = canonicalize(rng.random(dim) * 1.5 - 0.25)
        res = tree.nearest(query, k=k)
        expected = np.sort(EUCLIDEAN.distances(query, tree.points))[:k]
        assert np.allclose(res.distances, expected)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=10, deadline=None)
    def test_range_query_matches_brute_force(self, seed):
        from repro.storage.disk import SimulatedDisk

        rng = np.random.default_rng(seed)
        data = canonicalize(rng.random((150, 5)))
        disk = SimulatedDisk(
            DiskModel(t_seek=0.01, t_xfer=0.001, block_size=512)
        )
        tree = IQTree.build(data, disk=disk)
        query = canonicalize(rng.random(5))
        radius = float(rng.random()) * 0.8
        res = tree.range_query(query, radius)
        expected = set(
            np.flatnonzero(
                EUCLIDEAN.distances(query, tree.points) <= radius
            ).tolist()
        )
        assert set(res.ids.tolist()) == expected
