"""Tests for the data-set generators and workload splitter."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.datasets import (
    cad_like,
    color_histogram_like,
    gaussian_clusters,
    holdout_queries,
    low_dimensional_manifold,
    make_workload,
    uniform,
    weather_like,
)

ALL_GENERATORS = [
    lambda n, seed: uniform(n, 8, seed=seed),
    lambda n, seed: gaussian_clusters(n, 8, seed=seed),
    lambda n, seed: low_dimensional_manifold(n, 8, seed=seed),
    lambda n, seed: cad_like(n, seed=seed),
    lambda n, seed: color_histogram_like(n, seed=seed),
    lambda n, seed: weather_like(n, seed=seed),
]


class TestCommonContracts:
    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_shape_and_range(self, gen):
        pts = gen(500, 0)
        assert pts.shape[0] == 500
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_deterministic(self, gen):
        assert np.array_equal(gen(200, 7), gen(200, 7))

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_seed_changes_data(self, gen):
        assert not np.array_equal(gen(200, 1), gen(200, 2))

    @pytest.mark.parametrize("gen", ALL_GENERATORS)
    def test_float32_representable(self, gen):
        pts = gen(100, 3)
        assert np.array_equal(pts, pts.astype(np.float32))

    def test_invalid_sizes(self):
        with pytest.raises(ReproError):
            uniform(0, 4)
        with pytest.raises(ReproError):
            uniform(10, 0)


class TestDistributionProperties:
    def test_uniform_mean_near_half(self):
        pts = uniform(5000, 6, seed=0)
        assert np.allclose(pts.mean(axis=0), 0.5, atol=0.05)

    def test_gaussian_clusters_are_clustered(self):
        pts = gaussian_clusters(3000, 6, n_clusters=5, spread=0.02, seed=1)
        # Clustered data has much lower NN distances than uniform.
        from repro.geometry.metrics import EUCLIDEAN

        sample = pts[:200]
        rest = pts
        nn = [
            np.partition(EUCLIDEAN.distances(s, rest), 1)[1]
            for s in sample
        ]
        upts = uniform(3000, 6, seed=1)
        unn = [
            np.partition(EUCLIDEAN.distances(s, upts), 1)[1]
            for s in upts[:200]
        ]
        assert np.median(nn) < 0.5 * np.median(unn)

    def test_cad_like_variance_decays(self):
        pts = cad_like(5000, seed=2)
        variances = pts.var(axis=0)
        # Fourier-style energy decay: later dims carry much less spread.
        assert variances[0] > 4 * variances[-1]

    def test_color_histogram_sums_near_one(self):
        pts = color_histogram_like(1000, seed=3)
        sums = pts.sum(axis=1)
        # Clipping to [0,1] and float32 rounding leave sums near 1.
        assert np.all(np.abs(sums - 1.0) < 0.05)

    def test_weather_like_low_fractal_dim(self):
        from repro.costmodel.fractal import correlation_dimension

        pts = weather_like(4000, seed=4)
        assert correlation_dimension(pts) < 4.5

    def test_manifold_respects_intrinsic_dim(self):
        from repro.costmodel.fractal import correlation_dimension

        thin = low_dimensional_manifold(3000, 8, intrinsic_dim=1, seed=5)
        thick = low_dimensional_manifold(3000, 8, intrinsic_dim=4, seed=5)
        assert correlation_dimension(thin) < correlation_dimension(thick)

    def test_invalid_parameters(self):
        with pytest.raises(ReproError):
            gaussian_clusters(10, 4, n_clusters=0)
        with pytest.raises(ReproError):
            low_dimensional_manifold(10, 4, intrinsic_dim=9)
        with pytest.raises(ReproError):
            cad_like(10, decay=0.0)
        with pytest.raises(ReproError):
            weather_like(10, noise=-1.0)


class TestWorkloads:
    def test_holdout_disjoint_and_complete(self, rng):
        data = rng.random((100, 3))
        db, queries = holdout_queries(data, 10, seed=0)
        assert db.shape == (90, 3)
        assert queries.shape == (10, 3)
        combined = np.vstack([db, queries])
        assert np.array_equal(
            np.sort(combined, axis=0), np.sort(data, axis=0)
        )

    def test_holdout_deterministic(self, rng):
        data = rng.random((50, 2))
        db1, q1 = holdout_queries(data, 5, seed=3)
        db2, q2 = holdout_queries(data, 5, seed=3)
        assert np.array_equal(q1, q2) and np.array_equal(db1, db2)

    def test_holdout_invalid_sizes(self, rng):
        data = rng.random((10, 2))
        with pytest.raises(ReproError):
            holdout_queries(data, 0)
        with pytest.raises(ReproError):
            holdout_queries(data, 10)

    def test_make_workload_exact_db_size(self):
        db, queries = make_workload(uniform, n=500, n_queries=20, dim=4)
        assert db.shape == (500, 4)
        assert queries.shape == (20, 4)
