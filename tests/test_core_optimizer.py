"""Tests for the optimal-quantization split-tree algorithm."""

import numpy as np
import pytest

from repro.exceptions import BuildError
from repro.core.build import bulk_load_partitions
from repro.core.optimizer import (
    fixed_bits_partitions,
    optimize_partitions,
)
from repro.costmodel.model import CostModel
from repro.quantization.capacity import capacity_for_bits
from repro.storage.disk import DiskModel


BLOCK = 1024


@pytest.fixture
def cost_model():
    return CostModel(
        DiskModel(block_size=BLOCK), dim=8, n_total=2000
    )


@pytest.fixture
def setup(uniform_points, cost_model):
    initial = bulk_load_partitions(uniform_points, BLOCK)
    solution, trace = optimize_partitions(
        uniform_points, initial, cost_model, BLOCK
    )
    return uniform_points, initial, solution, trace


class TestSolutionValidity:
    def test_covers_all_points_exactly_once(self, setup):
        data, _initial, solution, _trace = setup
        combined = np.sort(
            np.concatenate([o.partition.indices for o in solution])
        )
        assert np.array_equal(combined, np.arange(len(data)))

    def test_every_partition_fits_its_bits(self, setup):
        _data, _initial, solution, _trace = setup
        for opt in solution:
            cap = capacity_for_bits(BLOCK, 8, opt.bits)
            assert opt.partition.size <= cap

    def test_bits_are_finest_storable(self, setup):
        """Definition of the stored level: the finest g that fits."""
        _data, _initial, solution, _trace = setup
        for opt in solution:
            assert opt.bits == opt.partition.storable_bits(BLOCK)

    def test_solution_at_least_as_large_as_initial(self, setup):
        _data, initial, solution, _trace = setup
        assert len(solution) >= len(initial)


class TestTrace:
    def test_costs_cover_full_trajectory(self, setup):
        data, initial, _solution, trace = setup
        # The trajectory runs from the initial partitioning down to the
        # all-32-bit solution; each step adds exactly one page.
        cap32 = capacity_for_bits(BLOCK, 8, 32)
        assert trace.n_initial == len(initial)
        assert len(trace.costs) >= 2
        # Final state pages: every leaf fits 32 bits.
        final_pages = trace.n_initial + len(trace.costs) - 1
        assert final_pages >= -(-len(data) // cap32)

    def test_best_step_is_argmin(self, setup):
        _data, _initial, _solution, trace = setup
        assert trace.costs[trace.best_step] == min(trace.costs)

    def test_n_final_matches_best_step(self, setup):
        _data, _initial, solution, trace = setup
        assert trace.n_final == len(solution)
        assert trace.n_final == trace.n_initial + trace.best_step


class TestOptimality:
    def test_beats_all_fixed_resolutions(self, uniform_points, cost_model):
        """The chosen solution's modeled cost is minimal among every
        fixed-g partitioning -- a strictly weaker family, so this is a
        necessary condition of the optimality theorem."""
        initial = bulk_load_partitions(uniform_points, BLOCK)
        solution, trace = optimize_partitions(
            uniform_points, initial, cost_model, BLOCK
        )
        chosen = cost_model.total_cost(
            [o.partition.stats(BLOCK) for o in solution]
        )
        assert chosen == pytest.approx(min(trace.costs))
        for bits in (1, 2, 4, 8, 16, 32):
            fixed = fixed_bits_partitions(uniform_points, BLOCK, bits)
            fixed_cost = cost_model.total_cost(
                [f.partition.stats(BLOCK) for f in fixed]
            )
            assert chosen <= fixed_cost * (1 + 1e-9)

    def test_greedy_order_never_splits_lower_benefit_first(
        self, uniform_points, cost_model
    ):
        """The recorded trajectory is monotone in per-step benefit for
        siblings: no child is split before its parent (structural
        invariant of the split forest)."""
        initial = bulk_load_partitions(uniform_points, BLOCK)
        _solution, trace = optimize_partitions(
            uniform_points, initial, cost_model, BLOCK
        )
        # If any child had been split before its parent the frontier
        # reconstruction would double-count points; covered above, so
        # here we just re-run deterministically.
        _solution2, trace2 = optimize_partitions(
            uniform_points, initial, cost_model, BLOCK
        )
        assert trace.costs == trace2.costs
        assert trace.best_step == trace2.best_step


class TestClusteredData:
    def test_absolute_resolution_adapts_to_density(self, rng):
        """The paper's skew story: because quantization is relative to
        each page's MBR, pages in dense regions end up with a much finer
        *absolute* grid than pages in sparse regions, even when the
        per-page bit count is similar."""
        background = rng.random((1200, 6)) * 0.5
        cluster = 0.9 + rng.normal(0, 0.004, size=(800, 6))
        data = np.clip(np.vstack([background, cluster]), 0, 1)
        data = data.astype(np.float32).astype(np.float64)
        model = CostModel(
            DiskModel(block_size=BLOCK), dim=6, n_total=len(data)
        )
        initial = bulk_load_partitions(data, BLOCK)
        solution, _trace = optimize_partitions(data, initial, model, BLOCK)
        cell_widths = [
            np.mean(np.asarray(o.partition.mbr.extents) / 2.0**o.bits)
            for o in solution
            if o.bits < 32
        ]
        assert len(cell_widths) >= 2
        # Dense-cluster pages quantize orders of magnitude finer.
        assert max(cell_widths) > 20 * min(cell_widths)

    def test_refinement_probability_scale_invariant(self):
        """Under the query-follows-data assumption, P_refine depends on
        the page's point count and bit depth, not its absolute scale --
        the reason equal-m pages legitimately share one g."""
        from repro.costmodel.minkowski import refinement_probability

        for scale in (1.0, 1e-2, 1e-4):
            sides = np.full(6, 0.5 * scale)
            p = refinement_probability(125, sides, 10, 2000)
            assert p == pytest.approx(
                refinement_probability(125, np.full(6, 0.5), 10, 2000),
                rel=1e-6,
            )


class TestEdgeCases:
    def test_empty_initial_rejected(self, uniform_points, cost_model):
        with pytest.raises(BuildError):
            optimize_partitions(uniform_points, [], cost_model, BLOCK)

    def test_tiny_dataset(self, rng, cost_model):
        data = rng.random((3, 8))
        initial = bulk_load_partitions(data, BLOCK)
        solution, trace = optimize_partitions(
            data, initial, cost_model, BLOCK
        )
        assert sum(o.partition.size for o in solution) == 3

    def test_duplicate_points(self, cost_model):
        data = np.ones((500, 8))
        initial = bulk_load_partitions(data, BLOCK)
        solution, _trace = optimize_partitions(
            data, initial, cost_model, BLOCK
        )
        assert sum(o.partition.size for o in solution) == 500

    def test_fixed_bits_helper(self, uniform_points):
        for bits in (1, 8, 32):
            fixed = fixed_bits_partitions(uniform_points, BLOCK, bits)
            cap = capacity_for_bits(BLOCK, 8, bits)
            assert all(f.bits == bits for f in fixed)
            assert all(f.partition.size <= cap for f in fixed)
