"""Tests for the split heuristic."""

import numpy as np
import pytest

from repro.exceptions import BuildError
from repro.core.partition import Partition
from repro.core.split import split_partition


class TestSplit:
    def test_balanced_halves(self, rng):
        data = rng.random((101, 5))
        part = Partition.of(data, np.arange(101))
        left, right = split_partition(data, part)
        assert {left.size, right.size} == {50, 51}
        combined = np.sort(np.concatenate([left.indices, right.indices]))
        assert np.array_equal(combined, np.arange(101))

    def test_splits_longest_dimension(self, rng):
        data = rng.random((200, 3))
        data[:, 1] *= 10  # dimension 1 has the largest extent
        part = Partition.of(data, np.arange(200))
        left, right = split_partition(data, part)
        # The halves must be separated in dimension 1.
        assert left.mbr.upper[1] <= right.mbr.lower[1] or (
            right.mbr.upper[1] <= left.mbr.lower[1]
        )

    def test_children_mbrs_tight_and_inside_parent(self, rng):
        data = rng.random((100, 4))
        part = Partition.of(data, np.arange(100))
        for child in split_partition(data, part):
            assert part.mbr.contains_mbr(child.mbr)
            assert child.mbr == Partition.of(data, child.indices).mbr

    def test_duplicate_heavy_dimension_falls_back(self):
        # Dimension 0 has the largest extent but only two distinct
        # values; a valid split must still be produced.
        data = np.zeros((10, 2))
        data[5:, 0] = 10.0
        data[:, 1] = np.linspace(0, 1, 10)
        part = Partition.of(data, np.arange(10))
        left, right = split_partition(data, part)
        assert left.size + right.size == 10
        assert left.size > 0 and right.size > 0

    def test_all_identical_points_split_by_count(self):
        data = np.ones((9, 3))
        part = Partition.of(data, np.arange(9))
        left, right = split_partition(data, part)
        assert {left.size, right.size} == {4, 5}

    def test_single_point_rejected(self, rng):
        data = rng.random((5, 2))
        part = Partition.of(data, np.array([2]))
        with pytest.raises(BuildError):
            split_partition(data, part)

    def test_two_points(self, rng):
        data = rng.random((2, 6))
        part = Partition.of(data, np.arange(2))
        left, right = split_partition(data, part)
        assert left.size == right.size == 1

    def test_heavy_duplicates_stay_balanced(self):
        # 90% of values share the median: the mask must still produce
        # two near-equal halves (stable-order tie breaking).
        data = np.zeros((100, 1))
        data[:90, 0] = 0.5
        data[90:, 0] = np.linspace(0, 1, 10)
        part = Partition.of(data, np.arange(100))
        left, right = split_partition(data, part)
        assert {left.size, right.size} == {50, 50}
