"""End-to-end codec contract: every codec policy returns the answers
the grid reference returns, bit for bit, across every serving surface.

Parametrized ids are the literal codec names (``grid``/``pq``/``ef``/
``auto``) so the CI ``codecs`` matrix can select one codec's tests with
``-k``.  The workload is the micro-cluster regime the PQ codec targets
(tight clumps far smaller than a page), so ``pq`` and ``auto`` builds
really do carry PQ pages -- a census test pins that, guarding against a
vacuously green suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.search import locate_address
from repro.core.tree import IQTree
from repro.costmodel.model import PartitionStats
from repro.core.optimizer import stats_for
from repro.datasets import gaussian_clusters, make_workload
from repro.engine import QueryEngine, ShardRouter
from repro.exceptions import IntegrityError, QueryDataError
from repro.obs.drift import DriftMonitor
from repro.storage.journal import DurableTree
from repro.storage.persistence import (
    load_iqtree,
    save_iqtree,
    serialize_iqtree,
    verify_container,
)
from repro.storage.runtime_faults import ReadFaultInjector

CODECS = ("grid", "pq", "ef", "auto")
K = 6

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


@pytest.fixture(scope="module")
def workload():
    """Micro-clusters: ~500-point quantized pages, where PQ engages."""
    return make_workload(
        gaussian_clusters,
        n=8000,
        n_queries=24,
        seed=7,
        dim=16,
        n_clusters=64,
        spread=0.0005,
    )


@pytest.fixture(scope="module")
def trees(workload):
    """One read-only build per codec policy (tests must not mutate)."""
    data, _ = workload
    return {codec: IQTree.build(data, codec=codec) for codec in CODECS}


def fresh_tree(workload, codec: str) -> IQTree:
    """A private build for tests that install injectors or contexts."""
    data, _ = workload
    return IQTree.build(data, codec=codec)


def observed_quantized_address(tree, query, k=K):
    """A second-level disk address a pristine query actually reads."""
    observer = ReadFaultInjector()
    tree.disk.install_fault_injector(observer)
    tree.nearest(query, k=k)
    tree.disk.clear_fault_injector()
    for address in sorted(observer.attempts_seen):
        if locate_address(tree, address)[0] == "quantized":
            return address
    raise AssertionError("query never read the quantized level")


class TestCodecCensus:
    """The fixture must exercise what each policy claims to build."""

    @pytest.mark.parametrize("codec", CODECS)
    def test_policy_applied(self, trees, codec):
        tree = trees[codec]
        pq_pages = sum(1 for opt in tree._partitions if opt.codec)
        if codec in ("pq", "auto"):
            assert pq_pages > 0, f"{codec} build carries no PQ pages"
        else:
            assert pq_pages == 0
        assert tree.directory_codec == ("ef" if codec == "ef" else "dense")


class TestAnswerParity:
    """Codecs change bounds and layout, never answers."""

    @pytest.mark.parametrize("codec", CODECS)
    def test_knn_bit_identical(self, trees, workload, codec):
        _, queries = workload
        for q in queries:
            want = trees["grid"].nearest(q, k=K)
            got = trees[codec].nearest(q, k=K)
            assert np.array_equal(want.ids, got.ids)
            assert np.array_equal(want.distances, got.distances)

    @pytest.mark.parametrize("codec", CODECS)
    def test_range_bit_identical(self, trees, workload, codec):
        data, queries = workload
        for q in queries[:6]:
            radius = float(
                np.partition(
                    trees["grid"].metric.distances(q, data), 30
                )[30]
            )
            want = trees["grid"].range_query(q, radius)
            got = trees[codec].range_query(q, radius)
            assert set(want.ids.tolist()) == set(got.ids.tolist())

    @pytest.mark.parametrize("codec", CODECS)
    def test_parallel_workers_agree(self, trees, workload, codec):
        _, queries = workload
        with QueryEngine(trees["grid"], workers=1) as base_engine:
            base = base_engine.knn_batch(queries, k=K)
        with QueryEngine(trees[codec], workers=3) as engine:
            got = engine.knn_batch(queries, k=K)
        for want_q, got_q in zip(base, got):
            assert np.array_equal(want_q.ids, got_q.ids)
            assert np.array_equal(want_q.distances, got_q.distances)

    @pytest.mark.parametrize("codec", CODECS)
    def test_sharded_scatter_gather_agrees(self, trees, workload, codec):
        _, queries = workload
        with QueryEngine(trees["grid"], workers=1) as base_engine:
            base = base_engine.knn_batch(queries, k=K)
        with ShardRouter(trees[codec], shards=3, workers=2) as router:
            got = router.knn_batch(queries, k=K)
        for want_q, got_q in zip(base, got):
            assert np.array_equal(want_q.ids, got_q.ids)
            assert np.array_equal(want_q.distances, got_q.distances)


class TestPersistenceRoundTrip:
    @pytest.mark.parametrize("codec", CODECS)
    def test_save_load_verify(self, trees, workload, codec, tmp_path):
        _, queries = workload
        path = tmp_path / f"{codec}.iqt"
        save_iqtree(trees[codec], path, fsync=False)
        loaded = load_iqtree(path, verify=True)
        for q in queries[:6]:
            want = trees[codec].nearest(q, k=K)
            got = loaded.nearest(q, k=K)
            assert np.array_equal(want.ids, got.ids)
            assert np.array_equal(want.distances, got.distances)

    @pytest.mark.parametrize("codec", CODECS)
    def test_fsck_codec_expectation(self, trees, codec, tmp_path):
        path = tmp_path / f"{codec}.iqt"
        save_iqtree(trees[codec], path, fsync=False)
        report = verify_container(path, expect_codec=codec)
        assert report.ok, report.render()
        # the expectation check is live: grid and pq disagree
        other = "grid" if codec != "grid" else "pq"
        assert not verify_container(path, expect_codec=other).ok

    def test_grid_container_carries_no_codec_meta(self, trees):
        """Grid mode stays byte-identical to the pre-codec format: no
        codec meta keys, codec byte zero on every page."""
        raw = serialize_iqtree(trees["grid"])
        for key in (b'"codecs"', b'"directory_codec"', b'"codec_mode"'):
            assert key not in raw


class TestCorruptionSafety:
    """Corrupt codec payloads are loud (quarantine/IntegrityError), and
    surviving answers stay exact -- never silently wrong."""

    def test_corrupt_pq_page_quarantined_not_wrong(self, workload):
        data, queries = workload
        tree = fresh_tree(workload, "pq")
        query = queries[0]
        base = tree.nearest(query, k=K)
        address = observed_quantized_address(tree, query)
        _, page = locate_address(tree, address)
        assert tree._partitions[page].codec, "faulted page is not PQ"
        inj = ReadFaultInjector()
        inj.corrupt_always(address)
        tree.disk.install_fault_injector(inj)
        ctx = tree.use_fault_tolerance()
        res = tree.nearest(query, k=K)
        assert res.degraded
        assert address in ctx.quarantine
        # surviving certain results are true exact distances
        for pos, pid in enumerate(res.ids.tolist()):
            if res.certain is None or res.certain[pos]:
                true = tree.metric.distance(query, tree.points[pid])
                assert res.distances[pos] == pytest.approx(true)
        tree.disk.clear_fault_injector()
        tree.clear_fault_tolerance()
        clean = tree.nearest(query, k=K)
        assert np.array_equal(clean.ids, base.ids)

    def test_corrupt_pq_page_without_context_raises(self, workload):
        _, queries = workload
        tree = fresh_tree(workload, "pq")
        query = queries[1]
        address = observed_quantized_address(tree, query)
        inj = ReadFaultInjector()
        inj.corrupt_always(address)
        tree.disk.install_fault_injector(inj)
        with pytest.raises(QueryDataError) as err:
            tree.nearest(query, k=K)
        assert isinstance(err.value.__cause__, IntegrityError)

    @pytest.mark.parametrize("codec", ["grid", "pq"])
    def test_lost_page_parity(self, workload, codec):
        """A lost second-level page degrades identically per codec: the
        same LostPage report contract, the same surviving answers."""
        _, queries = workload
        tree = fresh_tree(workload, codec)
        query = queries[2]
        address = observed_quantized_address(tree, query)
        inj = ReadFaultInjector()
        inj.fail_always(address)
        tree.disk.install_fault_injector(inj)
        tree.use_fault_tolerance()
        res = tree.nearest(query, k=K)
        assert res.degraded and res.lost_pages
        lost = res.lost_pages[0]
        assert 0 <= lost.page < tree.n_pages
        assert lost.n_points == tree._counts[lost.page]
        assert lost.mindist <= lost.maxdist
        for pos, pid in enumerate(res.ids.tolist()):
            if res.certain is None or res.certain[pos]:
                true = tree.metric.distance(query, tree.points[pid])
                assert res.distances[pos] == pytest.approx(true)


class TestMixedCodecDrift:
    """Satellite: per-codec decode-cost attribution keeps the drift
    monitor honest on mixed-codec trees."""

    @staticmethod
    def stream_drift(tree, queries, k=5) -> float:
        """Relative error of the model's per-query time prediction
        against the simulated stream average."""
        monitor = DriftMonitor()
        _, predicted_s = monitor._prediction(tree, k)
        total = 0.0
        for q in queries:
            before = tree.disk.stats.elapsed
            tree.nearest(q, k=k)
            total += tree.disk.stats.elapsed - before
        actual_s = total / len(queries)
        return abs(actual_s - predicted_s) / predicted_s

    def test_mixed_codec_drift_within_5pct_of_grid(
        self, trees, workload
    ):
        """Swapping half the pages to PQ must not degrade prediction
        fidelity by more than 5 percentage points vs the grid-only
        build of the same data."""
        _, queries = workload
        grid_drift = self.stream_drift(trees["grid"], queries)
        auto_drift = self.stream_drift(trees["auto"], queries)
        assert auto_drift <= grid_drift + 0.05, (
            f"mixed-codec drift {auto_drift:.3f} regressed more than "
            f"5% over grid drift {grid_drift:.3f}"
        )

    def test_attribution_uses_effective_bits(self, trees):
        """The cost attribution is live: pricing PQ pages at their raw
        stored code width (instead of the codebook's grid-equivalent
        resolution) would predict a very different refinement cost."""
        tree = trees["auto"]
        assert any(opt.codec for opt in tree._partitions)

        def naive(opt):
            s = stats_for(opt)
            if opt.codec:
                return PartitionStats(
                    m=s.m,
                    side_lengths=s.side_lengths,
                    bits=float(opt.pq_bits),
                )
            return s

        model = tree.cost_model
        aware = model.breakdown(
            stats_for(o) for o in tree._partitions
        ).total
        naive_total = model.breakdown(
            naive(o) for o in tree._partitions
        ).total
        assert naive_total > aware * 1.2

    def test_pq_pages_report_effective_bits(self, trees):
        for opt in trees["auto"]._partitions:
            if opt.codec:
                s = stats_for(opt)
                assert s.bits == opt.eff_bits
                assert s.bits != opt.pq_bits


class TestGroupCommitWAL:
    """Satellite: group-commit batches fsyncs without weakening the
    acked-prefix recovery contract."""

    @staticmethod
    def small_tree() -> IQTree:
        rng = np.random.default_rng(31)
        pts = rng.random((300, 4)).astype(np.float32).astype(np.float64)
        return IQTree.build(pts)

    @staticmethod
    def counting_fsync(monkeypatch):
        import repro.storage.journal as journal_mod

        calls = []
        real = journal_mod.os.fsync

        def counted(fd):
            calls.append(fd)
            return real(fd)

        monkeypatch.setattr(journal_mod.os, "fsync", counted)
        return calls

    def test_group_commit_coalesces_fsyncs(self, tmp_path, monkeypatch):
        rng = np.random.default_rng(5)
        batch = rng.random((8, 4))
        counts = {}
        for group in (1, 4):
            store = DurableTree.create(
                self.small_tree(),
                tmp_path / f"g{group}.iqt",
                group_commit=group,
            )
            calls = self.counting_fsync(monkeypatch)
            for point in batch:
                store.insert(point)
            counts[group] = len(calls)
            store.close()
        assert counts[1] == 8  # one fsync per acked append
        assert counts[4] == 2  # 8 appends in 2 group commits

    def test_group_commit_recovery_bit_identical(self, tmp_path):
        rng = np.random.default_rng(17)
        path = tmp_path / "grp.iqt"
        store = DurableTree.create(
            self.small_tree(), path, group_commit=4
        )
        for point in rng.random((6, 4)):
            store.insert(point)  # 6 appends: one un-synced pending pair
        store.sync()  # acks the tail group
        query = rng.random(4)
        want = store.tree.nearest(query, k=5)
        store.close()
        recovered = DurableTree.open(path)
        assert recovered.recovered_ops == 6
        got = recovered.tree.nearest(query, k=5)
        assert np.array_equal(want.ids, got.ids)
        assert np.array_equal(want.distances, got.distances)
        recovered.close()
