"""Edge-case tests for search on unusual data and queries."""

import numpy as np
import pytest

from repro.exceptions import SearchError
from repro.core.tree import IQTree, canonicalize
from repro.geometry.metrics import EUCLIDEAN
from repro.storage.disk import DiskModel, SimulatedDisk


def small_disk():
    return SimulatedDisk(DiskModel(t_seek=0.01, t_xfer=0.001, block_size=512))


class TestDuplicateHeavyData:
    @pytest.fixture
    def tree(self):
        # 60% duplicates of a single point, the rest random.
        rng = np.random.default_rng(3)
        dupes = np.tile([0.5, 0.5, 0.5, 0.5], (600, 1))
        rest = rng.random((400, 4))
        data = canonicalize(np.vstack([dupes, rest]))
        return IQTree.build(data, disk=small_disk())

    def test_knn_on_duplicate_point(self, tree):
        res = tree.nearest(np.array([0.5] * 4), k=10)
        assert np.allclose(res.distances, 0.0)
        assert len(set(res.ids.tolist())) == 10

    def test_knn_past_duplicate_block(self, tree):
        res = tree.nearest(np.array([0.5] * 4), k=650)
        expected = np.sort(
            EUCLIDEAN.distances(np.array([0.5] * 4), tree.points)
        )[:650]
        assert np.allclose(res.distances, expected)

    def test_range_on_duplicates(self, tree):
        res = tree.range_query(np.array([0.5] * 4), 0.0)
        assert len(res.ids) == 600


class TestExtremeK:
    @pytest.fixture
    def tree(self, uniform_points):
        return IQTree.build(uniform_points[:300], disk=small_disk())

    def test_k_equals_n(self, tree, rng):
        q = rng.random(8)
        res = tree.nearest(q, k=300)
        expected = np.sort(EUCLIDEAN.distances(q, tree.points))
        assert np.allclose(res.distances, expected)

    def test_k_equals_n_minus_one(self, tree, rng):
        q = rng.random(8)
        res = tree.nearest(q, k=299)
        assert res.ids.size == 299


class TestDegenerateDimensions:
    def test_constant_dimension(self):
        rng = np.random.default_rng(5)
        data = rng.random((500, 5))
        data[:, 2] = 0.25  # zero extent in dimension 2
        data = canonicalize(data)
        tree = IQTree.build(data, disk=small_disk())
        q = canonicalize(np.array([0.3, 0.7, 0.25, 0.1, 0.9]))
        res = tree.nearest(q, k=4)
        expected = np.sort(EUCLIDEAN.distances(q, tree.points))[:4]
        assert np.allclose(res.distances, expected)

    def test_one_dimensional_data(self):
        rng = np.random.default_rng(6)
        data = canonicalize(rng.random((400, 1)))
        tree = IQTree.build(data, disk=small_disk())
        res = tree.nearest(np.array([0.5]), k=3)
        expected = np.sort(np.abs(tree.points[:, 0] - 0.5))[:3]
        assert np.allclose(res.distances, expected)

    def test_high_dimension_small_n(self):
        rng = np.random.default_rng(7)
        data = canonicalize(rng.random((60, 40)))
        tree = IQTree.build(data, disk=small_disk())
        q = canonicalize(rng.random(40))
        res = tree.nearest(q, k=2)
        expected = np.sort(EUCLIDEAN.distances(q, tree.points))[:2]
        assert np.allclose(res.distances, expected)


class TestNonFiniteQueries:
    @pytest.fixture
    def tree(self, uniform_points):
        return IQTree.build(uniform_points[:200], disk=small_disk())

    def test_nan_query_rejected(self, tree):
        q = np.full(8, np.nan)
        with pytest.raises(SearchError):
            tree.nearest(q)
        with pytest.raises(SearchError):
            tree.range_query(q, 1.0)

    def test_inf_query_rejected(self, tree):
        q = np.full(8, np.inf)
        with pytest.raises(SearchError):
            tree.nearest(q)

    def test_partial_nan_rejected(self, tree):
        q = np.zeros(8)
        q[3] = np.nan
        with pytest.raises(SearchError):
            tree.nearest(q)


class TestTies:
    def test_equidistant_neighbors(self):
        # Four points at exactly the same distance from the center.
        data = canonicalize(
            np.array(
                [
                    [0.4, 0.5],
                    [0.6, 0.5],
                    [0.5, 0.4],
                    [0.5, 0.6],
                    [0.9, 0.9],
                ]
            )
        )
        tree = IQTree.build(data, disk=small_disk())
        res = tree.nearest(np.array([0.5, 0.5]), k=4)
        assert np.allclose(res.distances, 0.1)
        assert set(res.ids.tolist()) == {0, 1, 2, 3}

    def test_k_smaller_than_tie_set(self):
        data = canonicalize(
            np.array([[0.4, 0.5], [0.6, 0.5], [0.5, 0.4], [0.5, 0.6]])
        )
        tree = IQTree.build(data, disk=small_disk())
        res = tree.nearest(np.array([0.5, 0.5]), k=2)
        assert np.allclose(res.distances, 0.1)
        assert len(set(res.ids.tolist())) == 2


class TestTinyTrees:
    def test_two_points(self):
        data = canonicalize(np.array([[0.1, 0.1], [0.9, 0.9]]))
        tree = IQTree.build(data, disk=small_disk())
        res = tree.nearest(np.array([0.2, 0.2]), k=1)
        assert res.ids[0] == 0

    def test_query_far_away_in_every_direction(self, uniform_points):
        tree = IQTree.build(uniform_points[:100], disk=small_disk())
        for sign in (-1.0, 1.0):
            q = np.full(8, sign * 100.0)
            res = tree.nearest(q, k=1)
            expected = EUCLIDEAN.distances(q, tree.points).min()
            assert res.distances[0] == pytest.approx(expected)
