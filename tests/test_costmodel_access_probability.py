"""Tests for runtime access probabilities (eqs. 2-5)."""

import numpy as np
import pytest

from repro.exceptions import CostModelError
from repro.costmodel.access_probability import (
    PageView,
    access_probabilities,
    effective_cube_radius,
    intersection_volumes,
)
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM


def make_view(lowers, uppers, counts, mindists):
    return PageView(
        lowers=np.asarray(lowers, dtype=np.float64),
        uppers=np.asarray(uppers, dtype=np.float64),
        counts=np.asarray(counts, dtype=np.float64),
        mindists=np.asarray(mindists, dtype=np.float64),
    )


class TestIntersectionVolumes:
    def test_fully_contained_box(self):
        # A small box inside the query cube intersects entirely.
        v = intersection_volumes(
            np.array([0.5, 0.5]),
            0.5,
            np.array([[0.4, 0.4]]),
            np.array([[0.6, 0.6]]),
        )
        assert v[0] == pytest.approx(0.04)

    def test_disjoint_box(self):
        v = intersection_volumes(
            np.array([0.0, 0.0]),
            0.1,
            np.array([[5.0, 5.0]]),
            np.array([[6.0, 6.0]]),
        )
        assert v[0] == 0.0

    def test_partial_overlap(self):
        # Cube [0,1]^2 (q=0.5, r=0.5) with box [0.5, 1.5]^2 -> 0.25.
        v = intersection_volumes(
            np.array([0.5, 0.5]),
            0.5,
            np.array([[0.5, 0.5]]),
            np.array([[1.5, 1.5]]),
        )
        assert v[0] == pytest.approx(0.25)

    def test_negative_radius_rejected(self):
        with pytest.raises(CostModelError):
            intersection_volumes(
                np.zeros(2), -0.1, np.zeros((1, 2)), np.ones((1, 2))
            )


class TestEffectiveCubeRadius:
    def test_max_metric_passthrough(self):
        assert effective_cube_radius(0.3, 8, MAXIMUM) == 0.3

    def test_euclidean_volume_matched(self):
        r = 0.4
        for d in (2, 8, 16):
            r_eff = effective_cube_radius(r, d, EUCLIDEAN)
            assert (2 * r_eff) ** d == pytest.approx(
                EUCLIDEAN.ball_volume(r, d)
            )

    def test_euclidean_smaller_than_enclosing_cube_high_d(self):
        assert effective_cube_radius(1.0, 16, EUCLIDEAN) < 1.0


class TestAccessProbabilities:
    def test_pivot_has_probability_one(self):
        view = make_view(
            [[0.0, 0.0], [2.0, 2.0]],
            [[1.0, 1.0], [3.0, 3.0]],
            [10, 10],
            [0.0, 2.0],
        )
        p = access_probabilities(np.array([0.5, 0.5]), view, np.array([0]))
        assert p[0] == 1.0

    def test_far_page_behind_dense_near_page(self):
        # The near page is huge relative to the b_i-sphere's reach and
        # packed with points: the far page will almost surely be pruned.
        view = make_view(
            [[0.0, 0.0], [10.0, 0.0]],
            [[1.0, 1.0], [11.0, 1.0]],
            [1000, 10],
            [0.0, 9.5],
        )
        q = np.array([0.5, 0.5])
        p = access_probabilities(q, view, np.array([1]), metric=MAXIMUM)
        assert p[0] < 0.05

    def test_empty_intersection_keeps_probability_one(self):
        # Higher-priority page whose box misses the b_i-sphere entirely
        # cannot prune the target.
        view = make_view(
            [[0.0, 0.0], [0.0, 5.0]],
            [[1.0, 1.0], [1.0, 6.0]],
            [50, 10],
            [0.0, 0.2],
        )
        q = np.array([0.5, 0.5])
        # Target 1 has radius 0.2 around q: page 0 spans that region?
        # Page 0 contains q, so it intersects; use a target with radius
        # so small that intersection exists -> probability < 1; but
        # page at [0,5]x[1,6] vs radius 0.2 sphere: the *target's* own
        # sphere intersected with page 0 is nonempty.
        p = access_probabilities(q, view, np.array([1]), metric=MAXIMUM)
        assert 0.0 <= p[0] <= 1.0

    def test_more_points_lower_probability(self):
        # Page 0 spans [0,4]^2; the target's b_i-cube [-1,2]^2 overlaps a
        # quarter of it, so the no-point factor is 0.75^count.
        def prob(count):
            view = make_view(
                [[0.0, 0.0], [2.0, 0.0]],
                [[4.0, 4.0], [3.0, 1.0]],
                [count, 10],
                [0.0, 1.5],
            )
            q = np.array([0.5, 0.5])
            return access_probabilities(
                q, view, np.array([1]), metric=MAXIMUM
            )[0]

        assert prob(10) < prob(3) < prob(1)
        assert prob(1) == pytest.approx(0.75)

    def test_multiple_targets(self):
        view = make_view(
            [[0.0, 0.0], [2.0, 0.0], [4.0, 0.0]],
            [[1.0, 1.0], [3.0, 1.0], [5.0, 1.0]],
            [100, 100, 100],
            [0.0, 1.5, 3.5],
        )
        q = np.array([0.5, 0.5])
        p = access_probabilities(
            q, view, np.array([0, 1, 2]), metric=MAXIMUM
        )
        assert p[0] == 1.0
        # Farther pages have more chances to be pruned.
        assert p[0] >= p[1] >= p[2]

    def test_results_in_unit_interval(self, rng):
        lowers = rng.random((20, 4))
        uppers = lowers + rng.random((20, 4)) * 0.5
        q = rng.random(4)
        from repro.geometry.mbr import mindist_to_boxes

        view = make_view(
            lowers, uppers, rng.integers(1, 200, 20),
            mindist_to_boxes(q, lowers, uppers),
        )
        p = access_probabilities(q, view, np.arange(20), metric=EUCLIDEAN)
        assert np.all((p >= 0) & (p <= 1))
