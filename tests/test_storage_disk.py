"""Tests for the disk model and simulated-time accounting."""

import pytest

from repro.exceptions import StorageError
from repro.storage.disk import DiskModel, IOStats, SimulatedDisk


class TestDiskModel:
    def test_defaults_sane(self):
        model = DiskModel()
        assert model.t_seek > model.t_xfer > 0
        assert model.block_size == 8192

    def test_overread_window(self):
        model = DiskModel(t_seek=0.010, t_xfer=0.001)
        assert model.overread_window == pytest.approx(10.0)

    def test_scan_time(self):
        model = DiskModel(t_seek=0.01, t_xfer=0.001)
        assert model.scan_time(0) == 0.0
        assert model.scan_time(5) == pytest.approx(0.015)

    def test_random_read_time(self):
        model = DiskModel(t_seek=0.01, t_xfer=0.001)
        assert model.random_read_time(3) == pytest.approx(0.033)

    def test_validation(self):
        with pytest.raises(ValueError, match="t_xfer must be positive"):
            DiskModel(t_xfer=0.0)
        with pytest.raises(ValueError, match="t_seek must be positive"):
            DiskModel(t_seek=-1.0)
        with pytest.raises(ValueError, match="t_seek must be positive"):
            DiskModel(t_seek=0.0)
        with pytest.raises(
            ValueError, match="block_size must be positive"
        ):
            DiskModel(block_size=0)
        with pytest.raises(ValueError, match="got -4"):
            DiskModel(block_size=-4)

    def test_frozen(self):
        model = DiskModel()
        with pytest.raises(Exception):
            model.t_seek = 0.5


class TestIOStats:
    def test_add_seek(self):
        model = DiskModel(t_seek=0.01, t_xfer=0.001)
        stats = IOStats()
        stats.add_seek(model, 2)
        assert stats.seeks == 2
        assert stats.elapsed == pytest.approx(0.02)

    def test_add_transfer_with_overread(self):
        model = DiskModel(t_seek=0.01, t_xfer=0.001)
        stats = IOStats()
        stats.add_transfer(model, 10, overread=3)
        assert stats.blocks_read == 10
        assert stats.blocks_overread == 3
        assert stats.elapsed == pytest.approx(0.010)

    def test_invalid_accounting(self):
        stats = IOStats()
        with pytest.raises(StorageError):
            stats.add_transfer(DiskModel(), 2, overread=3)
        with pytest.raises(StorageError):
            stats.add_seek(DiskModel(), -1)

    def test_merged_with(self):
        a = IOStats(seeks=1, blocks_read=2, blocks_overread=1, elapsed=0.5)
        b = IOStats(seeks=2, blocks_read=3, blocks_overread=0, elapsed=0.25)
        merged = a.merged_with(b)
        assert merged.seeks == 3
        assert merged.blocks_read == 5
        assert merged.elapsed == pytest.approx(0.75)

    def test_reset(self):
        stats = IOStats(seeks=5, blocks_read=9, elapsed=1.0)
        stats.reset()
        assert stats.seeks == 0 and stats.elapsed == 0.0


class TestSimulatedDisk:
    def test_sequential_read_after_seek(self):
        disk = SimulatedDisk(DiskModel(t_seek=0.01, t_xfer=0.001))
        disk.read_blocks(0, 4)
        assert disk.stats.seeks == 1
        assert disk.stats.blocks_read == 4
        # Head is at block 4: continuing there costs no extra seek.
        disk.read_blocks(4, 2)
        assert disk.stats.seeks == 1
        assert disk.stats.blocks_read == 6

    def test_non_contiguous_read_pays_seek(self):
        disk = SimulatedDisk(DiskModel(t_seek=0.01, t_xfer=0.001))
        disk.read_blocks(0, 2)
        disk.read_blocks(10, 1)
        assert disk.stats.seeks == 2

    def test_backward_read_pays_seek(self):
        disk = SimulatedDisk()
        disk.read_blocks(10, 2)
        disk.read_blocks(0, 1)
        assert disk.stats.seeks == 2

    def test_zero_count_is_noop(self):
        disk = SimulatedDisk()
        disk.read_blocks(5, 0)
        assert disk.stats.elapsed == 0.0

    def test_park_forces_seek(self):
        disk = SimulatedDisk()
        disk.read_blocks(0, 2)
        disk.park()
        disk.read_blocks(2, 1)  # would have been sequential
        assert disk.stats.seeks == 2

    def test_extent_allocation_contiguous(self):
        disk = SimulatedDisk()
        a = disk.allocate_extent(10)
        b = disk.allocate_extent(5)
        c = disk.allocate_extent(0)
        assert a == 0 and b == 10 and c == 15

    def test_reset_stats_keeps_head(self):
        disk = SimulatedDisk()
        disk.read_blocks(0, 3)
        disk.reset_stats()
        assert disk.stats.elapsed == 0.0
        disk.read_blocks(3, 1)  # still sequential
        assert disk.stats.seeks == 0
