"""Tests for dynamic insert/delete/reoptimize (paper Section 6)."""

import numpy as np
import pytest

from repro.exceptions import BuildError, SearchError
from repro.core.tree import IQTree
from repro.geometry.metrics import EUCLIDEAN
from tests.conftest import brute_force_knn


@pytest.fixture
def tree(uniform_points, small_disk):
    return IQTree.build(uniform_points[:500], disk=small_disk)


class TestInsert:
    def test_insert_returns_new_id(self, tree, rng):
        n_before = tree.n_points
        new_id = tree.insert(rng.random(8))
        assert new_id == n_before
        assert tree.n_points == n_before + 1

    def test_inserted_point_found(self, tree):
        point = np.full(8, 0.4321)
        new_id = tree.insert(point)
        res = tree.nearest(point, k=1)
        assert res.ids[0] == new_id
        assert res.distances[0] == pytest.approx(0.0, abs=1e-6)

    def test_many_inserts_stay_correct(self, tree, rng):
        for _ in range(60):
            tree.insert(rng.random(8))
        for _ in range(5):
            q = rng.random(8)
            res = tree.nearest(q, k=5)
            _ids, dists = brute_force_knn(tree.points, q, 5, EUCLIDEAN)
            assert np.allclose(res.distances, dists)

    def test_overflow_triggers_split_or_requantize(self, tree, rng):
        pages_before = tree.n_pages
        bits_before = tree.page_bits.copy()
        # Insert many points into one tight region to overflow a page.
        target = tree.points[0] + rng.normal(0, 1e-4, size=(300, 8))
        for p in np.clip(target, 0, 1):
            tree.insert(p)
        changed = (
            tree.n_pages != pages_before
            or len(tree.page_bits) != len(bits_before)
            or not np.array_equal(tree.page_bits, bits_before)
        )
        assert changed
        # Structure still valid: every page fits its bits.
        from repro.quantization.capacity import capacity_for_bits

        for opt in tree._partitions:
            cap = capacity_for_bits(
                tree.disk.model.block_size, tree.dim, opt.bits
            )
            assert opt.partition.size <= cap

    def test_insert_outside_all_mbrs(self, tree):
        new_id = tree.insert(np.full(8, 0.9999))
        res = tree.nearest(np.full(8, 0.9999), k=1)
        assert res.ids[0] == new_id

    def test_wrong_dimension_rejected(self, tree):
        with pytest.raises(SearchError):
            tree.insert(np.zeros(3))

    def test_failed_overflow_insert_leaves_tree_intact(
        self, tree, rng, monkeypatch
    ):
        """A BuildError mid-insert must not corrupt the tree.

        Forcing ``max_bits_for_count`` to 0 makes every overflow
        resolution fail (``_sized`` rejects both split halves), the
        worst case of an unsplittable page.  The insert must roll back
        completely: same points, same partitions, still clean, and
        queries answer exactly as before.
        """
        import repro.core.maintenance as maintenance

        tree._ensure_clean()
        points_before = tree.points.copy()
        partitions_before = list(tree._partitions)
        q = rng.random(8)
        baseline = tree.nearest(q, k=3)

        monkeypatch.setattr(
            maintenance, "max_bits_for_count", lambda *args: 0
        )
        with pytest.raises(BuildError):
            tree.insert(rng.random(8))
        monkeypatch.undo()

        assert tree.n_points == points_before.shape[0]
        assert np.array_equal(tree.points, points_before)
        assert tree._partitions == partitions_before
        assert not tree._dirty
        after = tree.nearest(q, k=3)
        assert np.array_equal(after.ids, baseline.ids)
        assert np.array_equal(after.distances, baseline.distances)


class TestDelete:
    def test_deleted_point_not_returned(self, tree):
        victim = 42
        point = tree.points[victim].copy()
        tree.delete(victim)
        res = tree.nearest(point, k=3)
        assert victim not in res.ids

    def test_delete_keeps_structure_correct(self, tree, rng):
        removed = set()
        for pid in range(0, 100, 7):
            tree.delete(pid)
            removed.add(pid)
        q = rng.random(8)
        res = tree.nearest(q, k=5)
        assert not (set(res.ids.tolist()) & removed)
        # Against brute force over the survivors:
        keep = np.array(
            [i for i in range(tree.points.shape[0]) if i not in removed]
        )
        dists = EUCLIDEAN.distances(q, tree.points[keep])
        expected = np.sort(dists)[:5]
        assert np.allclose(res.distances, expected)

    def test_delete_unknown_id_rejected(self, tree):
        with pytest.raises(SearchError):
            tree.delete(10**9)

    def test_delete_twice_rejected(self, tree):
        tree.delete(7)
        with pytest.raises(SearchError):
            tree.delete(7)

    def test_delete_whole_page(self, tree):
        part0 = tree._partitions[0].partition
        ids = part0.indices.tolist()
        pages_before = tree.n_pages
        for pid in ids:
            tree.delete(pid)
        tree.nearest(np.full(8, 0.5))  # forces re-layout
        assert tree.n_pages == pages_before - 1

    def test_cannot_delete_last_point(self, small_disk):
        tree = IQTree.build(np.array([[0.1, 0.2]]), disk=small_disk)
        with pytest.raises(BuildError):
            tree.delete(0)


class TestReoptimize:
    def test_reoptimize_after_churn(self, tree, rng):
        for _ in range(50):
            tree.insert(rng.random(8))
        for pid in range(0, 40, 3):
            tree.delete(pid)
        tree.reoptimize()
        # Ids are compacted: the index is rebuilt over live points only.
        q = rng.random(8)
        res = tree.nearest(q, k=3)
        _ids, dists = brute_force_knn(tree.points, q, 3, EUCLIDEAN)
        assert np.allclose(res.distances, dists)

    def test_reoptimize_refreshes_trace(self, tree, rng):
        for _ in range(30):
            tree.insert(rng.random(8))
        tree.reoptimize()
        assert tree.trace is not None
        assert tree.trace.n_final == tree.n_pages


class TestLayoutFree:
    """Bursts of maintenance ops must not rebuild the files mid-burst."""

    def test_insert_burst_relays_out_once(self, tree, rng):
        tree._ensure_clean()
        quant_before = tree._quant_file
        for _ in range(20):
            tree.insert(rng.random(8))
        # Still the same sealed files: no intermediate re-layout.
        assert tree._quant_file is quant_before
        assert tree._dirty
        tree._ensure_clean()
        assert tree._quant_file is not quant_before

    def test_delete_on_dirty_tree_stays_layout_free(self, tree, rng):
        tree._ensure_clean()
        quant_before = tree._quant_file
        new_id = tree.insert(rng.random(8))
        tree.delete(new_id)       # locate must work on the dirty tree
        tree.delete(3)            # and for pre-existing ids too
        assert tree._quant_file is quant_before
        assert tree._dirty

    def test_delete_then_insert_roundtrip(self, tree, rng):
        """Deleting a point and inserting the same coordinates yields a
        fresh id that answers exactly."""
        victim = 17
        coords = tree.points[victim].copy()
        tree.delete(victim)
        new_id = tree.insert(coords)
        assert new_id != victim
        res = tree.nearest(coords, k=1)
        assert res.ids[0] == new_id
        assert res.distances[0] == 0.0

    def test_mixed_burst_matches_brute_force(self, tree, rng):
        removed = set()
        for i in range(30):
            if i % 3 == 0:
                pid = i * 7
                tree.delete(pid)
                removed.add(pid)
            else:
                tree.insert(rng.random(8))
        q = rng.random(8)
        res = tree.nearest(q, k=5)
        keep = np.array(
            [i for i in range(tree.points.shape[0]) if i not in removed]
        )
        dists = EUCLIDEAN.distances(q, tree.points[keep])
        assert np.allclose(res.distances, np.sort(dists)[:5])


class TestPoolInvalidationOnRelayout:
    """Regression: a lazy re-layout moves every file to a fresh extent;
    blocks of the *old* extents must not linger in the buffer pool as
    phantom residents (they can never be read again, so they only
    distort capacity and hit accounting)."""

    def test_relayout_evicts_old_extent_residents(self, tree, rng):
        from repro.storage.cache import BufferPool

        pool = BufferPool(capacity=64)
        tree.use_buffer_pool(pool)
        tree.nearest(rng.random(8), k=3)  # warm the pool
        old_addresses = [
            inner.extent_start + i
            for slot in ("_dir_file", "_quant_file", "_exact_file")
            for inner in [getattr(tree, slot)._file]
            for i in range(inner.n_blocks)
        ]
        assert any(pool.peek(a) for a in old_addresses)

        tree.insert(rng.random(8))
        tree._ensure_clean()  # re-layout onto fresh extents

        stale = [a for a in old_addresses if pool.peek(a)]
        assert stale == []

    def test_relayout_keeps_pool_usable(self, tree, rng):
        from repro.storage.cache import BufferPool

        pool = BufferPool(capacity=64)
        tree.use_buffer_pool(pool)
        tree.nearest(rng.random(8), k=3)
        tree.insert(rng.random(8))
        q = rng.random(8)
        first = tree.nearest(q, k=3)
        second = tree.nearest(q, k=3)
        assert np.array_equal(first.ids, second.ids)
        # The second read of the new extent hits the pool.
        assert pool.hit_rate > 0.0
