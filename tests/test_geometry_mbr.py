"""Tests for MBR construction, predicates, and distance bounds."""

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.mbr import (
    MBR,
    maxdist_to_boxes,
    mindist_components,
    mindist_to_boxes,
)
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM


class TestConstruction:
    def test_of_points_is_tight(self):
        pts = np.array([[0.0, 2.0], [1.0, 1.0], [0.5, 3.0]])
        box = MBR.of_points(pts)
        assert np.array_equal(box.lower, [0.0, 1.0])
        assert np.array_equal(box.upper, [1.0, 3.0])

    def test_unit_cube(self):
        box = MBR.unit_cube(4)
        assert box.dim == 4
        assert box.volume() == 1.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(GeometryError):
            MBR([1.0, 0.0], [0.0, 1.0])

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(GeometryError):
            MBR([0.0], [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(GeometryError):
            MBR([], [])

    def test_rejects_empty_point_set(self):
        with pytest.raises(GeometryError):
            MBR.of_points(np.empty((0, 3)))

    def test_bounds_are_immutable(self):
        box = MBR.unit_cube(2)
        with pytest.raises(ValueError):
            box.lower[0] = 5.0

    def test_bounds_copied_from_input(self):
        lower = np.zeros(2)
        box = MBR(lower, np.ones(2))
        lower[0] = 99.0
        assert box.lower[0] == 0.0


class TestGeometry:
    def test_volume_and_margin(self):
        box = MBR([0.0, 0.0], [2.0, 3.0])
        assert box.volume() == 6.0
        assert box.margin() == 5.0

    def test_degenerate_volume_is_zero(self):
        box = MBR([0.0, 1.0], [2.0, 1.0])
        assert box.volume() == 0.0

    def test_center_and_extents(self):
        box = MBR([0.0, 2.0], [4.0, 6.0])
        assert np.array_equal(box.center, [2.0, 4.0])
        assert np.array_equal(box.extents, [4.0, 4.0])

    def test_longest_dimension(self):
        box = MBR([0.0, 0.0, 0.0], [1.0, 5.0, 2.0])
        assert box.longest_dimension() == 1

    def test_union(self):
        a = MBR([0.0, 0.0], [1.0, 1.0])
        b = MBR([0.5, -1.0], [2.0, 0.5])
        u = a.union(b)
        assert np.array_equal(u.lower, [0.0, -1.0])
        assert np.array_equal(u.upper, [2.0, 1.0])

    def test_extended_by_point(self):
        box = MBR([0.0, 0.0], [1.0, 1.0]).extended_by_point([2.0, -1.0])
        assert np.array_equal(box.lower, [0.0, -1.0])
        assert np.array_equal(box.upper, [2.0, 1.0])

    def test_minkowski_enlarged(self):
        box = MBR([0.0], [1.0]).minkowski_enlarged(0.5)
        assert np.array_equal(box.lower, [-0.5])
        assert np.array_equal(box.upper, [1.5])

    def test_minkowski_enlarged_rejects_negative(self):
        with pytest.raises(GeometryError):
            MBR([0.0], [1.0]).minkowski_enlarged(-1.0)


class TestPredicates:
    def test_contains_point_boundary_inclusive(self):
        box = MBR([0.0, 0.0], [1.0, 1.0])
        assert box.contains_point([0.0, 1.0])
        assert box.contains_point([0.5, 0.5])
        assert not box.contains_point([1.5, 0.5])

    def test_contains_mbr(self):
        outer = MBR([0.0, 0.0], [2.0, 2.0])
        inner = MBR([0.5, 0.5], [1.0, 1.0])
        assert outer.contains_mbr(inner)
        assert not inner.contains_mbr(outer)

    def test_intersects(self):
        a = MBR([0.0, 0.0], [1.0, 1.0])
        b = MBR([1.0, 1.0], [2.0, 2.0])  # touching corner
        c = MBR([1.5, 1.5], [2.0, 2.0])
        assert a.intersects(b)
        assert not a.intersects(c)

    def test_intersection_volume(self):
        a = MBR([0.0, 0.0], [2.0, 2.0])
        b = MBR([1.0, 1.0], [3.0, 3.0])
        assert a.intersection_volume(b) == pytest.approx(1.0)
        assert a.intersection_volume(MBR([5.0, 5.0], [6.0, 6.0])) == 0.0

    def test_dimension_mismatch_raises(self):
        with pytest.raises(GeometryError):
            MBR.unit_cube(2).contains_point([0.5, 0.5, 0.5])


class TestDistances:
    def test_mindist_zero_inside(self):
        box = MBR([0.0, 0.0], [1.0, 1.0])
        assert box.mindist([0.5, 0.5]) == 0.0

    def test_mindist_outside(self):
        box = MBR([0.0, 0.0], [1.0, 1.0])
        assert box.mindist([2.0, 1.0]) == pytest.approx(1.0)
        assert box.mindist([2.0, 2.0]) == pytest.approx(np.sqrt(2.0))

    def test_mindist_max_metric(self):
        box = MBR([0.0, 0.0], [1.0, 1.0])
        assert box.mindist([2.0, 3.0], MAXIMUM) == pytest.approx(2.0)

    def test_maxdist_is_farthest_corner(self):
        box = MBR([0.0, 0.0], [1.0, 1.0])
        assert box.maxdist([0.0, 0.0]) == pytest.approx(np.sqrt(2.0))
        assert box.maxdist([0.5, 0.5]) == pytest.approx(
            np.sqrt(0.5), rel=1e-12
        )

    def test_mindist_leq_point_dist_leq_maxdist(self, rng):
        pts = rng.random((50, 4))
        box = MBR.of_points(pts)
        query = rng.random(4) * 2 - 0.5
        dmin = box.mindist(query)
        dmax = box.maxdist(query)
        dists = EUCLIDEAN.distances(query, pts)
        assert np.all(dists >= dmin - 1e-12)
        assert np.all(dists <= dmax + 1e-12)


class TestVectorizedHelpers:
    def test_mindist_components_nonnegative(self, rng):
        lowers = rng.random((20, 3))
        uppers = lowers + rng.random((20, 3))
        query = rng.random(3)
        comps = mindist_components(query, lowers, uppers)
        assert comps.shape == (20, 3)
        assert np.all(comps >= 0.0)

    def test_vectorized_matches_scalar(self, rng):
        lowers = rng.random((30, 5))
        uppers = lowers + rng.random((30, 5))
        query = rng.random(5) * 2 - 0.5
        vec_min = mindist_to_boxes(query, lowers, uppers)
        vec_max = maxdist_to_boxes(query, lowers, uppers)
        for i in range(30):
            box = MBR(lowers[i], uppers[i])
            assert vec_min[i] == pytest.approx(box.mindist(query))
            assert vec_max[i] == pytest.approx(box.maxdist(query))

    def test_max_metric_variant(self, rng):
        lowers = rng.random((10, 4))
        uppers = lowers + rng.random((10, 4))
        query = rng.random(4) * 3 - 1
        vec = mindist_to_boxes(query, lowers, uppers, MAXIMUM)
        for i in range(10):
            box = MBR(lowers[i], uppers[i])
            assert vec[i] == pytest.approx(box.mindist(query, MAXIMUM))


class TestDunder:
    def test_equality_and_hash(self):
        a = MBR([0.0, 1.0], [2.0, 3.0])
        b = MBR([0.0, 1.0], [2.0, 3.0])
        c = MBR([0.0, 1.0], [2.0, 4.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_repr_roundtrippable_fields(self):
        box = MBR([0.0], [1.0])
        assert "lower=[0.0]" in repr(box)
        assert "upper=[1.0]" in repr(box)
