"""Tests for the fractal-dimension estimators."""

import numpy as np
import pytest

from repro.exceptions import CostModelError
from repro.costmodel.fractal import (
    box_counting_dimension,
    correlation_dimension,
    estimate_fractal_dimension,
)
from repro.datasets import low_dimensional_manifold, uniform, weather_like


class TestBoxCounting:
    def test_uniform_square_near_two(self, rng):
        pts = rng.random((8000, 2))
        d0 = box_counting_dimension(pts)
        assert 1.6 < d0 <= 2.0

    def test_line_near_one(self, rng):
        t = rng.random(5000)
        pts = np.column_stack([t, t, t])
        d0 = box_counting_dimension(pts)
        assert 0.8 < d0 < 1.3

    def test_clamped_to_embedding_dim(self, rng):
        pts = rng.random((2000, 2))
        assert box_counting_dimension(pts) <= 2.0

    def test_deterministic(self, rng):
        pts = rng.random((3000, 3))
        assert box_counting_dimension(pts, seed=7) == (
            box_counting_dimension(pts, seed=7)
        )

    def test_rejects_tiny_input(self):
        with pytest.raises(CostModelError):
            box_counting_dimension(np.zeros((1, 2)))
        with pytest.raises(CostModelError):
            box_counting_dimension(np.zeros((10, 2)), scales=1)


class TestCorrelation:
    def test_uniform_cube_near_three(self, rng):
        pts = rng.random((3000, 3))
        d2 = correlation_dimension(pts)
        assert 2.2 < d2 <= 3.0

    def test_plane_in_five_dims_near_two(self, rng):
        uv = rng.random((3000, 2))
        basis = rng.normal(size=(2, 5))
        pts = uv @ basis
        d2 = correlation_dimension(pts)
        assert 1.5 < d2 < 2.6

    def test_identical_points_near_zero(self):
        pts = np.ones((100, 4))
        assert correlation_dimension(pts) == pytest.approx(0.0, abs=1e-3)

    def test_weather_analogue_is_low_dimensional(self):
        """The WEATHER substitute must have the paper's low D_F."""
        pts = weather_like(4000, seed=3)
        d2 = correlation_dimension(pts)
        assert d2 < 4.0  # far below the 9-d embedding

    def test_manifold_generator_matches_target(self):
        pts = low_dimensional_manifold(4000, dim=8, intrinsic_dim=2, seed=1)
        d2 = correlation_dimension(pts)
        assert 1.3 < d2 < 3.5

    def test_uniform_16d_is_high_dimensional(self):
        pts = uniform(3000, 16, seed=2)
        d2 = correlation_dimension(pts)
        assert d2 > 6.0


class TestDispatch:
    def test_methods(self, rng):
        pts = rng.random((1000, 2))
        assert estimate_fractal_dimension(pts, "correlation") > 0
        assert estimate_fractal_dimension(pts, "box") > 0

    def test_unknown_method(self, rng):
        with pytest.raises(CostModelError):
            estimate_fractal_dimension(rng.random((10, 2)), "hausdorff")
