"""Tests for the assembled cost model."""

import pytest

from repro.exceptions import CostModelError
from repro.costmodel.model import CostModel, PartitionStats
from repro.geometry.metrics import MAXIMUM
from repro.storage.disk import DiskModel


@pytest.fixture
def model():
    return CostModel(DiskModel(), dim=8, n_total=50_000)


def stats(m=200, sides=0.25, bits=4, dim=8):
    return PartitionStats(m=m, side_lengths=(sides,) * dim, bits=bits)


class TestRefinementCost:
    def test_exact_pages_cost_nothing(self, model):
        assert model.refinement_cost(stats(bits=32)) == 0.0

    def test_decreasing_in_bits(self, model):
        costs = [model.refinement_cost(stats(bits=g)) for g in range(1, 33)]
        assert all(a >= b for a, b in zip(costs, costs[1:]))

    def test_lookups_scale_with_points(self, model):
        few = model.refinement_lookups(stats(m=10))
        many = model.refinement_lookups(stats(m=400))
        assert many > few

    def test_cost_is_lookups_times_random_access(self, model):
        s = stats()
        per = model.disk.t_seek + model.disk.t_xfer
        assert model.refinement_cost(s) == pytest.approx(
            model.refinement_lookups(s) * per
        )


class TestDirectoryCosts:
    def test_first_level_linear(self, model):
        t1a, _ = model.directory_costs(100)
        t1b, _ = model.directory_costs(10_000)
        assert t1b > t1a

    def test_invalid_page_count(self, model):
        with pytest.raises(CostModelError):
            model.directory_costs(0)


class TestBreakdown:
    def test_total_is_sum(self, model):
        parts = [stats(bits=g) for g in (2, 4, 8)]
        b = model.breakdown(parts)
        assert b.total == pytest.approx(
            b.first_level + b.second_level + b.refinement
        )
        assert model.total_cost(parts) == pytest.approx(b.total)

    def test_aggregate_shortcut_matches(self, model):
        parts = [stats(m=100, bits=3), stats(m=300, bits=5)]
        full = model.total_cost(parts)
        refine_sum = sum(model.refinement_cost(p) for p in parts)
        shortcut = model.total_from_aggregates(len(parts), refine_sum)
        assert shortcut == pytest.approx(full)

    def test_empty_solution_rejected(self, model):
        with pytest.raises(CostModelError):
            model.breakdown([])


class TestConfiguration:
    def test_fractal_dim_default_is_d(self):
        m = CostModel(DiskModel(), dim=6, n_total=1000)
        assert m.fractal_dim == 6.0

    def test_fractal_dim_validated(self):
        with pytest.raises(CostModelError):
            CostModel(DiskModel(), dim=4, n_total=100, fractal_dim=9.0)

    def test_metric_configurable(self):
        m = CostModel(DiskModel(), dim=4, n_total=100, metric=MAXIMUM)
        assert m.metric is MAXIMUM

    def test_k_affects_refinement(self):
        m1 = CostModel(DiskModel(), dim=8, n_total=50_000, k=1)
        m10 = CostModel(DiskModel(), dim=8, n_total=50_000, k=10)
        assert m10.refinement_cost(stats()) >= m1.refinement_cost(stats())

    def test_invalid_construction(self):
        with pytest.raises(CostModelError):
            CostModel(DiskModel(), dim=0, n_total=10)
        with pytest.raises(CostModelError):
            CostModel(DiskModel(), dim=2, n_total=10, k=0)

    def test_repr_mentions_parameters(self, model):
        assert "dim=8" in repr(model)
        assert "n_total=50000" in repr(model)
