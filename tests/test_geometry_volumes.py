"""Tests for sphere/cube volumes and the Minkowski-sum formulas."""

import math

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM
from repro.geometry.volumes import (
    cube_radius_for_volume,
    cube_volume,
    minkowski_sum,
    minkowski_sum_euclidean,
    minkowski_sum_max_metric,
    sphere_radius_for_volume,
    sphere_volume,
)


class TestSphere:
    def test_known_low_dims(self):
        assert sphere_volume(1.0, 2) == pytest.approx(math.pi)
        assert sphere_volume(2.0, 3) == pytest.approx(
            4.0 / 3.0 * math.pi * 8.0
        )

    def test_radius_inverts(self):
        for d in (1, 4, 9, 16):
            v = sphere_volume(0.42, d)
            assert sphere_radius_for_volume(v, d) == pytest.approx(0.42)

    def test_zero_radius(self):
        assert sphere_volume(0.0, 5) == 0.0

    def test_high_dim_unit_ball_shrinks(self):
        # The curse of dimensionality the paper leans on: past its peak
        # at d=5 the unit ball's volume vanishes as d grows.
        assert sphere_volume(1.0, 30) < sphere_volume(1.0, 16) < sphere_volume(1.0, 5)
        assert sphere_volume(1.0, 30) < 1e-4

    def test_invalid_inputs(self):
        with pytest.raises(GeometryError):
            sphere_volume(-1.0, 2)
        with pytest.raises(GeometryError):
            sphere_volume(1.0, 0)


class TestCube:
    def test_volume(self):
        assert cube_volume(0.5, 3) == pytest.approx(1.0)

    def test_radius_inverts(self):
        v = cube_volume(0.3, 6)
        assert cube_radius_for_volume(v, 6) == pytest.approx(0.3)


class TestMinkowskiMax:
    def test_exact_product_form(self):
        # (1 + 2*0.5) * (2 + 2*0.5) = 2 * 3 = 6
        assert minkowski_sum_max_metric([1.0, 2.0], 0.5) == pytest.approx(6.0)

    def test_zero_radius_is_box_volume(self):
        assert minkowski_sum_max_metric([2.0, 3.0], 0.0) == pytest.approx(6.0)

    def test_degenerate_box_becomes_ball(self):
        # A zero-volume box inflated by r has the cube volume (2r)^d.
        assert minkowski_sum_max_metric([0.0, 0.0], 0.5) == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(GeometryError):
            minkowski_sum_max_metric([1.0], -0.1)
        with pytest.raises(GeometryError):
            minkowski_sum_max_metric([-1.0], 0.1)


class TestMinkowskiEuclidean:
    def test_zero_radius_is_box_volume_for_equal_sides(self):
        assert minkowski_sum_euclidean([2.0, 2.0], 0.0) == pytest.approx(4.0)

    def test_exact_for_cube_plus_ball_2d(self):
        # In 2-d the Minkowski sum of an a x a square and a disc of
        # radius r has exact area a^2 + 4*a*r/2*2 ... the binomial
        # approximation with equal sides is exact in 2-d:
        # a^2 + 2*a*(2r) ... check against the known closed form
        # a^2 + 4ar + pi r^2.
        a, r = 2.0, 0.5
        expected = a * a + 4 * a * r + math.pi * r * r
        got = minkowski_sum_euclidean([a, a], r)
        assert got == pytest.approx(expected)

    def test_monotone_in_radius(self):
        sides = np.array([1.0, 0.5, 0.25])
        vols = [minkowski_sum_euclidean(sides, r) for r in (0.0, 0.1, 0.5, 1.0)]
        assert vols == sorted(vols)

    def test_degenerate_box_reduces_to_ball(self):
        got = minkowski_sum_euclidean([0.0, 0.0, 0.0], 0.7)
        assert got == pytest.approx(sphere_volume(0.7, 3))

    def test_bounded_by_enclosing_max_sum(self):
        # Ball subset of cube => Euclidean sum <= max-metric sum.
        sides = np.array([1.0, 2.0, 0.5, 0.7])
        r = 0.3
        assert minkowski_sum_euclidean(sides, r) <= (
            minkowski_sum_max_metric(sides, r) + 1e-9
        )


class TestDispatch:
    def test_max_metric_dispatch(self):
        sides = np.array([1.0, 1.0])
        assert minkowski_sum(sides, 0.25, MAXIMUM) == pytest.approx(
            minkowski_sum_max_metric(sides, 0.25)
        )

    def test_euclidean_dispatch(self):
        sides = np.array([1.0, 1.0])
        assert minkowski_sum(sides, 0.25, EUCLIDEAN) == pytest.approx(
            minkowski_sum_euclidean(sides, 0.25)
        )
