"""Tests for IQ-tree construction and structure."""

import numpy as np
import pytest

from repro.exceptions import BuildError, SearchError
from repro.core.tree import IQTree, canonicalize
from repro.storage.disk import SimulatedDisk


@pytest.fixture
def tree(uniform_points, small_disk):
    return IQTree.build(uniform_points, disk=small_disk)


class TestCanonicalize:
    def test_idempotent(self, rng):
        data = rng.random((50, 3))
        once = canonicalize(data)
        assert np.array_equal(once, canonicalize(once))

    def test_float32_representable(self, rng):
        data = canonicalize(rng.random((50, 3)))
        assert np.array_equal(data, data.astype(np.float32))


class TestBuild:
    def test_basic_properties(self, tree, uniform_points):
        assert tree.n_points == len(uniform_points)
        assert tree.dim == 8
        assert tree.n_pages >= 1
        assert np.array_equal(tree.points, canonicalize(uniform_points))

    def test_three_files_exist(self, tree):
        sizes = tree.size_summary()
        assert sizes["directory_blocks"] >= 1
        assert sizes["quantized_blocks"] == tree.n_pages
        assert sizes["exact_blocks"] >= 0

    def test_page_bits_in_range(self, tree):
        bits = tree.page_bits
        assert np.all((bits >= 1) & (bits <= 32))

    def test_page_mbrs_contain_their_points(self, tree):
        for j in range(tree.n_pages):
            part = tree._partitions[j].partition
            box = tree.page_mbr(j)
            pts = part.points(tree.points)
            assert np.all(pts >= box.lower - 1e-9)
            assert np.all(pts <= box.upper + 1e-9)

    def test_no_quantization_variant(self, uniform_points, small_disk):
        tree = IQTree.build(uniform_points, disk=small_disk, optimize=False)
        assert np.all(tree.page_bits == 32)
        assert tree.size_summary()["exact_blocks"] == 0

    def test_fixed_bits_variant(self, uniform_points, small_disk):
        tree = IQTree.build(
            uniform_points, disk=small_disk, optimize=False, fixed_bits=4
        )
        assert np.all(tree.page_bits == 4)

    def test_fixed_bits_requires_optimize_false(self, uniform_points):
        with pytest.raises(BuildError):
            IQTree.build(uniform_points, fixed_bits=4)

    def test_fractal_dim_options(self, clustered_points, small_disk):
        auto = IQTree.build(clustered_points, disk=small_disk)
        assert 0 < auto.cost_model.fractal_dim <= 6
        fixed = IQTree.build(
            clustered_points,
            disk=SimulatedDisk(small_disk.model),
            fractal_dim=2.5,
        )
        assert fixed.cost_model.fractal_dim == 2.5
        none = IQTree.build(
            clustered_points,
            disk=SimulatedDisk(small_disk.model),
            fractal_dim=None,
        )
        assert none.cost_model.fractal_dim == 6.0

    def test_empty_rejected(self, small_disk):
        with pytest.raises(BuildError):
            IQTree.build(np.empty((0, 4)), disk=small_disk)

    def test_single_point(self, small_disk):
        tree = IQTree.build(np.array([[0.5, 0.5]]), disk=small_disk)
        res = tree.nearest(np.array([0.0, 0.0]))
        assert res.ids[0] == 0

    def test_trace_available_when_optimized(self, tree):
        assert tree.trace is not None
        assert tree.trace.n_final == tree.n_pages

    def test_repr(self, tree):
        assert "IQTree" in repr(tree)


class TestStoredRepresentation:
    def test_quantized_pages_roundtrip(self, tree):
        """Every page decodes to cells containing its points."""
        for j in range(tree.n_pages):
            handle = tree._read_page(j)
            part = tree._partitions[j].partition
            pts = part.points(tree.points)
            if handle.points is not None:
                order = np.argsort(handle.ids)
                sorted_ids = handle.ids[order]
                expect_order = np.argsort(part.indices)
                assert np.array_equal(
                    sorted_ids, part.indices[expect_order]
                )
                assert np.allclose(
                    handle.points[order], pts[expect_order]
                )
            else:
                q = tree._quantizer_for(j)
                lowers, uppers = q.cell_bounds(handle.codes)
                assert np.all(pts >= lowers - 1e-9)
                assert np.all(pts <= uppers + 1e-9)

    def test_exact_store_fetch(self, tree):
        from repro.core.tree import ExactStore

        store = ExactStore(tree)
        for j in range(tree.n_pages):
            if tree._bits[j] >= 32:
                continue
            part = tree._partitions[j].partition
            coords, pid = store.fetch(j, 0)
            assert pid == part.indices[0]
            assert np.array_equal(coords, tree.points[pid])
            break

    def test_exact_store_caches_blocks(self, tree):
        from repro.core.tree import ExactStore

        target = None
        for j in range(tree.n_pages):
            if tree._bits[j] < 32 and tree._counts[j] >= 2:
                target = j
                break
        if target is None:
            pytest.skip("no multi-point quantized page in this tree")
        store = ExactStore(tree)
        before = tree.disk.stats.blocks_read
        store.fetch(target, 0)
        first_cost = tree.disk.stats.blocks_read - before
        store.fetch(target, 1)  # adjacent record, usually same block
        assert store.refinements == 2
        assert tree.disk.stats.blocks_read - before <= first_cost + 1


class TestQueryValidation:
    def test_bad_k(self, tree):
        with pytest.raises(SearchError):
            tree.nearest(np.zeros(8), k=0)
        with pytest.raises(SearchError):
            tree.nearest(np.zeros(8), k=tree.n_points + 1)

    def test_bad_query_shape(self, tree):
        with pytest.raises(SearchError):
            tree.nearest(np.zeros(5))

    def test_bad_scheduler(self, tree):
        with pytest.raises(SearchError):
            tree.nearest(np.zeros(8), scheduler="psychic")

    def test_negative_radius(self, tree):
        with pytest.raises(SearchError):
            tree.range_query(np.zeros(8), -1.0)
