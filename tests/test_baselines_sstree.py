"""Tests for the SS-tree baseline."""

import numpy as np
import pytest

from repro.exceptions import BuildError, SearchError
from repro.baselines.sstree import SSTree
from repro.geometry.metrics import EUCLIDEAN
from repro.storage.disk import DiskModel, SimulatedDisk
from tests.conftest import brute_force_knn


def small_disk():
    return SimulatedDisk(DiskModel(t_seek=0.01, t_xfer=0.001, block_size=512))


@pytest.fixture
def sstree(uniform_points):
    return SSTree(uniform_points, disk=small_disk())


class TestStructure:
    def test_spheres_contain_their_points(self, sstree):
        stack = [sstree._root]
        while stack:
            item = stack.pop()
            if hasattr(item, "children"):
                stack.extend(item.children)
                continue
            members = sstree.points[item.indices]
            dists = np.sqrt(((members - item.center) ** 2).sum(axis=1))
            assert np.all(dists <= item.radius + 1e-9)

    def test_parent_spheres_contain_children(self, sstree):
        stack = [sstree._root]
        while stack:
            node = stack.pop()
            for child in node.children:
                gap = float(
                    np.sqrt(((child.center - node.center) ** 2).sum())
                )
                assert gap + child.radius <= node.radius + 1e-9
                if hasattr(child, "children"):
                    stack.append(child)

    def test_all_points_covered(self, sstree, uniform_points):
        seen = []
        stack = [sstree._root]
        while stack:
            item = stack.pop()
            if hasattr(item, "children"):
                stack.extend(item.children)
            else:
                seen.append(item.indices)
        combined = np.sort(np.concatenate(seen))
        assert np.array_equal(combined, np.arange(len(uniform_points)))

    def test_mean_leaf_radius_positive(self, sstree):
        assert sstree.mean_leaf_radius() > 0


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 4, 12])
    def test_knn_matches_brute_force(self, sstree, rng, k):
        q = rng.random(8)
        answer = sstree.nearest(q, k=k)
        _ids, dists = brute_force_knn(sstree.points, q, k, EUCLIDEAN)
        assert np.allclose(answer.distances, dists)

    def test_range_matches_brute_force(self, sstree, rng):
        q = rng.random(8)
        answer = sstree.range_query(q, 0.5)
        dists = EUCLIDEAN.distances(q, sstree.points)
        expected = set(np.flatnonzero(dists <= 0.5).tolist())
        assert set(answer.ids.tolist()) == expected

    def test_clustered_data(self, clustered_points, rng):
        tree = SSTree(clustered_points, disk=small_disk())
        q = rng.random(6)
        answer = tree.nearest(q, k=3)
        _ids, dists = brute_force_knn(tree.points, q, 3, EUCLIDEAN)
        assert np.allclose(answer.distances, dists)

    def test_selective_on_clusters(self, clustered_points):
        tree = SSTree(clustered_points, disk=small_disk())
        tree.disk.park()
        answer = tree.nearest(np.full(6, 0.2))
        assert answer.io.blocks_read < tree.n_leaves()


class TestInsert:
    def test_inserted_point_found(self, sstree):
        p = np.full(8, 0.321)
        new_id = sstree.insert(p)
        answer = sstree.nearest(p, k=1)
        assert answer.ids[0] == new_id

    def test_many_inserts_stay_correct(self, rng):
        data = rng.random((200, 5)).astype(np.float32).astype(np.float64)
        tree = SSTree(data, disk=small_disk())
        for _ in range(200):
            tree.insert(rng.random(5))
        q = rng.random(5)
        answer = tree.nearest(q, k=4)
        _ids, dists = brute_force_knn(tree.points, q, 4, EUCLIDEAN)
        assert np.allclose(answer.distances, dists)

    def test_spheres_valid_after_inserts(self, rng):
        data = rng.random((150, 4)).astype(np.float32).astype(np.float64)
        tree = SSTree(data, disk=small_disk())
        for _ in range(150):
            tree.insert(rng.random(4))
        stack = [tree._root]
        while stack:
            item = stack.pop()
            if hasattr(item, "children"):
                stack.extend(item.children)
                continue
            members = tree.points[item.indices]
            dists = np.sqrt(((members - item.center) ** 2).sum(axis=1))
            assert np.all(dists <= item.radius + 1e-9)


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            SSTree(np.empty((0, 4)))

    def test_non_euclidean_rejected(self, uniform_points):
        with pytest.raises(BuildError):
            SSTree(uniform_points, metric="maximum")

    def test_bad_query(self, sstree):
        with pytest.raises(SearchError):
            sstree.nearest(np.zeros(3))
        with pytest.raises(SearchError):
            sstree.range_query(np.zeros(8), -0.5)
