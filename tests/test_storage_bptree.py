"""Tests for the B+-tree substrate."""

import numpy as np
import pytest

from repro.exceptions import BuildError, StorageError
from repro.storage.bptree import BPlusTree
from repro.storage.disk import DiskModel, SimulatedDisk


def make_tree(n=500, dim=4, seed=0, block_size=512):
    rng = np.random.default_rng(seed)
    disk = SimulatedDisk(
        DiskModel(t_seek=0.01, t_xfer=0.001, block_size=block_size)
    )
    keys = rng.random(n) * 10
    coords = rng.random((n, dim)).astype(np.float32).astype(np.float64)
    ids = np.arange(n)
    return BPlusTree(keys, coords, ids, disk), keys, coords, ids


class TestStructure:
    def test_counts(self):
        tree, keys, _c, _i = make_tree()
        assert tree.n_records == 500
        assert tree.n_leaves == -(-500 // tree._leaf_capacity)

    def test_leaf_capacity_from_block_size(self):
        tree, *_ = make_tree(dim=4, block_size=512)
        # Record = 8 (key) + 16 (coords) + 4 (id) = 28 bytes.
        assert tree._leaf_capacity == 512 // 28

    def test_validation(self):
        disk = SimulatedDisk()
        with pytest.raises(BuildError):
            BPlusTree(np.empty(0), np.empty((0, 2)), np.empty(0), disk)
        with pytest.raises(BuildError):
            BPlusTree(
                np.ones(3), np.ones((2, 2)), np.arange(3), disk
            )


class TestRangeScan:
    def test_full_range_returns_everything(self):
        tree, keys, _c, ids = make_tree()
        got_keys, _coords, got_ids = tree.range_scan(-1e9, 1e9)
        assert got_keys.size == 500
        assert np.all(np.diff(got_keys) >= 0)
        assert set(got_ids.tolist()) == set(ids.tolist())

    def test_matches_brute_force(self):
        tree, keys, _c, ids = make_tree()
        for lo, hi in ((2.0, 3.0), (0.0, 0.5), (9.5, 10.5), (5.0, 5.0)):
            _k, _coords, got_ids = tree.range_scan(lo, hi)
            expected = ids[(keys >= lo) & (keys <= hi)]
            assert set(got_ids.tolist()) == set(expected.tolist())

    def test_empty_range(self):
        tree, *_ = make_tree()
        keys, coords, ids = tree.range_scan(100.0, 200.0)
        assert keys.size == 0 and coords.shape == (0, 4)

    def test_records_roundtrip(self):
        tree, keys, coords, ids = make_tree(n=60)
        got_keys, got_coords, got_ids = tree.range_scan(-1e9, 1e9)
        order = np.argsort(got_ids, kind="stable")
        by_id = np.argsort(ids[np.argsort(keys, kind="stable")], kind="stable")
        sorted_input = coords[np.argsort(keys, kind="stable")][by_id]
        assert np.allclose(got_coords[order], sorted_input)

    def test_inverted_range_rejected(self):
        tree, *_ = make_tree()
        with pytest.raises(StorageError):
            tree.range_scan(5.0, 4.0)


class TestIOAccounting:
    def test_scan_is_descend_plus_sequential(self):
        tree, keys, _c, _i = make_tree(n=2000)
        tree.disk.park()
        before = tree.disk.stats.seeks
        tree.range_scan(2.0, 8.0)
        # Interior descent + one seek to the leaf run.
        assert tree.disk.stats.seeks - before <= tree.height + 1

    def test_narrow_scan_reads_few_blocks(self):
        tree, keys, _c, _i = make_tree(n=2000)
        tree.disk.park()
        before = tree.disk.stats.blocks_read
        tree.range_scan(5.0, 5.01)
        narrow = tree.disk.stats.blocks_read - before
        tree.disk.park()
        before = tree.disk.stats.blocks_read
        tree.range_scan(0.0, 10.0)
        wide = tree.disk.stats.blocks_read - before
        assert narrow < wide

    def test_duplicate_keys(self):
        rng = np.random.default_rng(1)
        disk = SimulatedDisk(DiskModel(block_size=512))
        keys = np.repeat([1.0, 2.0, 3.0], 100)
        coords = rng.random((300, 3))
        tree = BPlusTree(keys, coords, np.arange(300), disk)
        _k, _c, ids = tree.range_scan(2.0, 2.0)
        assert ids.size == 100
