"""Tests for the top-level ``python -m repro`` CLI."""

import numpy as np
import pytest

from repro.cli import main


@pytest.fixture
def data_file(tmp_path, rng):
    path = tmp_path / "data.npy"
    np.save(path, rng.random((400, 6)).astype(np.float32))
    return path


@pytest.fixture
def index_file(tmp_path, data_file):
    path = tmp_path / "index.iqt"
    assert main(["build", str(data_file), str(path)]) == 0
    return path


class TestBuild:
    def test_build_writes_index(self, tmp_path, data_file, capsys):
        path = tmp_path / "fresh.iqt"
        assert main(["build", str(data_file), str(path)]) == 0
        assert path.exists()
        out = capsys.readouterr().out
        assert "saved to" in out

    def test_build_no_optimize(self, tmp_path, data_file, capsys):
        path = tmp_path / "exact.iqt"
        assert (
            main(["build", str(data_file), str(path), "--no-optimize"])
            == 0
        )
        out = capsys.readouterr().out
        assert "{32:" in out.replace("np.int64(32)", "32")

    def test_build_with_metric(self, tmp_path, data_file):
        path = tmp_path / "linf.iqt"
        assert (
            main(
                ["build", str(data_file), str(path), "--metric", "linf"]
            )
            == 0
        )


class TestQuery:
    def test_explicit_point(self, index_file, capsys):
        point = ",".join(["0.5"] * 6)
        assert (
            main(["query", str(index_file), "--point", point, "--k", "3"])
            == 0
        )
        out = capsys.readouterr().out
        assert "query ->" in out
        assert "ms simulated" in out

    def test_random_queries(self, index_file, capsys):
        assert main(["query", str(index_file), "--random", "3"]) == 0
        out = capsys.readouterr().out
        assert out.count("query ->") == 3


class TestBatch:
    def test_knn_batch(self, index_file, capsys):
        assert (
            main(
                [
                    "batch",
                    str(index_file),
                    "--random",
                    "5",
                    "--k",
                    "3",
                    "--pool",
                    "64",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "batch of 5 3-NN queries" in out
        assert "buffer pool" in out

    def test_range_batch_with_compare(self, index_file, capsys):
        assert (
            main(
                [
                    "batch",
                    str(index_file),
                    "--random",
                    "4",
                    "--radius",
                    "0.25",
                    "--compare",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "range r=0.25" in out
        assert "sequential loop" in out


class TestInfo:
    def test_info_fields(self, index_file, capsys):
        assert main(["info", str(index_file)]) == 0
        out = capsys.readouterr().out
        assert "metric: euclidean" in out
        assert "estimated query cost" in out
        assert "page resolutions" in out


class TestFsck:
    def test_fsck_clean_container(self, index_file, capsys):
        assert main(["fsck", str(index_file)]) == 0
        out = capsys.readouterr().out
        assert "IQTREE02" in out
        assert "status: clean" in out

    def test_fsck_corrupt_container(self, index_file, capsys):
        raw = bytearray(index_file.read_bytes())
        raw[-1] ^= 0xFF  # damage the payload tail
        index_file.write_bytes(bytes(raw))
        assert main(["fsck", str(index_file)]) == 1
        out = capsys.readouterr().out
        assert "status: corrupt" in out
        assert "payload" in out

    def test_fsck_legacy_v1(self, index_file, tmp_path, capsys):
        from repro.storage.persistence import load_iqtree, write_legacy_v1

        v1 = tmp_path / "legacy.iqt"
        write_legacy_v1(load_iqtree(index_file), v1)
        assert main(["fsck", str(v1)]) == 0
        out = capsys.readouterr().out
        assert "IQTREE01" in out
        assert "no checksum" in out


class TestValidate:
    def test_validate_runs(self, index_file, capsys):
        assert (
            main(["validate", str(index_file), "--queries", "4"]) == 0
        )
        out = capsys.readouterr().out
        assert "pages" in out and "refinements" in out


class TestChaos:
    @pytest.fixture
    def quantized_index(self, tmp_path, data_file):
        # Fixed-bit quantization guarantees third-level refinements, so
        # the chaos matrix can target both the quantized and exact
        # levels.
        path = tmp_path / "quantized.iqt"
        assert (
            main(["build", str(data_file), str(path), "--bits", "5"]) == 0
        )
        return path

    def test_full_matrix_passes(self, quantized_index, capsys):
        assert (
            main(
                [
                    "chaos",
                    str(quantized_index),
                    "--random",
                    "4",
                    "--k",
                    "3",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "chaos verdict: PASS" in out
        assert "post-chaos pristine check: ok" in out
        for kind in ("transient", "persistent", "corrupt"):
            assert kind in out

    def test_single_cell_smoke(self, quantized_index, capsys):
        assert (
            main(
                [
                    "chaos",
                    str(quantized_index),
                    "--random",
                    "3",
                    "--kinds",
                    "transient",
                    "--levels",
                    "exact",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "transient" in out and "exact" in out

    def test_unknown_kind_rejected(self, quantized_index):
        with pytest.raises(SystemExit):
            main(
                ["chaos", str(quantized_index), "--kinds", "gamma-ray"]
            )

    def test_write_matrix_passes(self, quantized_index, capsys):
        assert (
            main(
                [
                    "chaos",
                    str(quantized_index),
                    "--writes",
                    "--ops",
                    "12",
                    "--checkpoint-every",
                    "5",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "chaos verdict: PASS" in out
        for scenario in (
            "insert:post-append",
            "checkpoint:post-save",
            "torn-append",
            "torn-checkpoint",
            "corrupt-acked-record",
            "maintenance x sharded",
        ):
            assert scenario in out

    def test_writes_backend_rejected(self, quantized_index):
        with pytest.raises(SystemExit):
            main(
                [
                    "chaos",
                    str(quantized_index),
                    "--writes",
                    "--backend",
                    "carrier-pigeon",
                ]
            )
