"""Tests for the Pyramid Technique baseline."""

import numpy as np
import pytest

from repro.exceptions import BuildError, SearchError
from repro.baselines.pyramid import PyramidTechnique
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM
from repro.storage.disk import DiskModel, SimulatedDisk
from tests.conftest import brute_force_knn


def small_disk():
    return SimulatedDisk(DiskModel(t_seek=0.01, t_xfer=0.001, block_size=512))


@pytest.fixture
def pyramid(uniform_points):
    return PyramidTechnique(uniform_points, disk=small_disk())


class TestMapping:
    def test_values_in_pyramid_ranges(self, uniform_points):
        p = PyramidTechnique(uniform_points, disk=small_disk())
        unit = p._to_unit(p.points)
        values = p._pyramid_values(unit)
        d = p.dim
        assert np.all(values >= 0)
        assert np.all(values <= 2 * d)
        pyramids = np.floor(values).astype(int)
        heights = values - pyramids
        assert np.all(heights <= 0.5 + 1e-9)

    def test_center_point_has_zero_height(self):
        data = np.vstack([np.full((1, 4), 0.5), np.random.default_rng(0).random((50, 4))])
        p = PyramidTechnique(
            np.asarray(data, dtype=np.float32).astype(np.float64),
            disk=small_disk(),
        )
        unit = p._to_unit(p.points[:1])
        value = p._pyramid_values(unit)[0]
        assert value - np.floor(value) < 0.1

    def test_dominant_dimension_determines_pyramid(self):
        # A point far left in dim 1 lives in pyramid 1.
        data = np.array(
            [[0.5, 0.05, 0.5], [0.5, 0.95, 0.5], [0.5, 0.5, 0.5]],
            dtype=np.float64,
        )
        p = PyramidTechnique(data, disk=small_disk())
        # Normalization maps to unit space; recompute directly.
        unit = np.array([[0.5, 0.05, 0.5], [0.5, 0.95, 0.5]])
        values = p._pyramid_values(unit)
        assert int(np.floor(values[0])) == 1  # lower pyramid of dim 1
        assert int(np.floor(values[1])) == 1 + 3  # upper pyramid


class TestWindowQuery:
    def test_matches_brute_force(self, pyramid, rng):
        for _ in range(5):
            center = rng.random(8)
            half = 0.1 + 0.2 * rng.random()
            lower, upper = center - half, center + half
            answer = pyramid.window_query(lower, upper)
            expected = np.flatnonzero(
                np.all(
                    (pyramid.points >= lower) & (pyramid.points <= upper),
                    axis=1,
                )
            )
            assert set(answer.ids.tolist()) == set(expected.tolist())

    def test_whole_space_window(self, pyramid):
        answer = pyramid.window_query(np.zeros(8) - 1, np.ones(8) + 1)
        assert answer.ids.size == pyramid.n_points

    def test_empty_window(self, pyramid):
        answer = pyramid.window_query(np.full(8, 5.0), np.full(8, 6.0))
        assert answer.ids.size == 0

    def test_inverted_window_rejected(self, pyramid):
        with pytest.raises(SearchError):
            pyramid.window_query(np.ones(8), np.zeros(8))


class TestNearest:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_knn_matches_brute_force(self, pyramid, rng, k):
        for _ in range(5):
            q = rng.random(8)
            answer = pyramid.nearest(q, k=k)
            _ids, dists = brute_force_knn(
                pyramid.points, q, k, EUCLIDEAN
            )
            assert np.allclose(answer.distances, dists)

    def test_query_outside_space(self, pyramid):
        q = np.full(8, 2.0)
        answer = pyramid.nearest(q, k=1)
        expected = EUCLIDEAN.distances(q, pyramid.points).min()
        assert answer.distances[0] == pytest.approx(expected)

    def test_max_metric(self, uniform_points):
        p = PyramidTechnique(
            uniform_points, disk=small_disk(), metric=MAXIMUM
        )
        q = np.full(8, 0.3)
        answer = p.nearest(q, k=2)
        _ids, dists = brute_force_knn(p.points, q, 2, MAXIMUM)
        assert np.allclose(answer.distances, dists)

    def test_clustered_data(self, clustered_points, rng):
        p = PyramidTechnique(clustered_points, disk=small_disk())
        q = rng.random(6)
        answer = p.nearest(q, k=4)
        _ids, dists = brute_force_knn(p.points, q, 4, EUCLIDEAN)
        assert np.allclose(answer.distances, dists)


class TestRangeQuery:
    def test_matches_brute_force(self, pyramid, rng):
        q = rng.random(8)
        answer = pyramid.range_query(q, 0.5)
        dists = EUCLIDEAN.distances(q, pyramid.points)
        expected = set(np.flatnonzero(dists <= 0.5).tolist())
        assert set(answer.ids.tolist()) == expected

    def test_zero_radius(self, pyramid):
        q = pyramid.points[17]
        answer = pyramid.range_query(q, 0.0)
        assert 17 in answer.ids.tolist()


class TestIOPattern:
    def test_window_query_cost_scales_with_window(self, pyramid):
        pyramid.disk.park()
        small = pyramid.window_query(
            np.full(8, 0.45), np.full(8, 0.55)
        ).io.elapsed
        pyramid.disk.park()
        large = pyramid.window_query(
            np.full(8, 0.05), np.full(8, 0.95)
        ).io.elapsed
        assert small < large


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(BuildError):
            PyramidTechnique(np.empty((0, 3)))

    def test_bad_query(self, pyramid):
        with pytest.raises(SearchError):
            pyramid.nearest(np.zeros(3))
        with pytest.raises(SearchError):
            pyramid.nearest(np.zeros(8), k=0)
        with pytest.raises(SearchError):
            pyramid.range_query(np.zeros(8), -1.0)
