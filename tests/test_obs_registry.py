"""Metrics registry: instrument semantics, exposition formats, and the
single-accounting-path invariant between the registry, the simulated
disk ledger, and the buffer pool."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

from repro.core.tree import IQTree
from repro.core.search import nearest_neighbors
from repro.obs import instruments
from repro.obs.instruments import REGISTRY
from repro.obs.registry import MetricsRegistry
from repro.storage.cache import BufferPool
from repro.storage.disk import DiskModel, IOStats, SimulatedDisk

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "scripts"))
from lint_prometheus import lint  # noqa: E402


@pytest.fixture
def registry():
    """A private enabled registry (process registry untouched)."""
    return MetricsRegistry(enabled=True)


@pytest.fixture
def live_registry():
    """The process registry, enabled and zeroed, restored afterwards."""
    REGISTRY.reset()
    REGISTRY.enable()
    try:
        yield REGISTRY
    finally:
        REGISTRY.disable()
        REGISTRY.reset()


class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("c_total", "help")
        c.inc()
        c.inc(2.5)
        assert c.value() == pytest.approx(3.5)

    def test_labels_are_independent_series(self, registry):
        c = registry.counter("c_total")
        c.inc(bits=4)
        c.inc(3, bits=8)
        assert c.value(bits=4) == 1
        assert c.value(bits=8) == 3
        assert c.value(bits=16) == 0

    def test_negative_rejected(self, registry):
        c = registry.counter("c_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_disabled_is_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("c_total")
        c.inc(100)
        assert c.value() == 0


class TestGauge:
    def test_set_and_inc(self, registry):
        g = registry.gauge("g")
        g.set(7, stage="initial")
        g.inc(-2, stage="initial")
        assert g.value(stage="initial") == 5
        assert g.value(stage="final") == 0


class TestHistogram:
    def test_observe_buckets_sum_count(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            h.observe(v)
        assert h.count() == 3
        assert h.sum() == pytest.approx(101.0)
        sample = h._collect()[0]
        assert sample["buckets"] == {"1": 1, "2": 1, "+Inf": 1}

    def test_bounds_must_increase(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(2.0, 1.0))

    def test_exposition_is_cumulative(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        lines = registry.to_prometheus().splitlines()
        assert 'h_bucket{le="1"} 1' in lines
        assert 'h_bucket{le="2"} 2' in lines
        assert 'h_bucket{le="+Inf"} 2' in lines
        assert "h_count 2" in lines


class TestHistogramQuantile:
    def test_interpolates_within_the_winning_bucket(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        # 4 samples in (1, 2]: the median rank (2 of 4) lands halfway
        # through that bucket's count, so the estimate is its midpoint.
        for v in (1.1, 1.2, 1.8, 1.9):
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(1.5)
        assert h.quantile(1.0) == pytest.approx(2.0)

    def test_first_bucket_interpolates_from_zero(self, registry):
        h = registry.histogram("h", buckets=(2.0, 4.0))
        h.observe(0.5)
        h.observe(1.0)
        assert h.quantile(0.5) == pytest.approx(1.0)

    def test_empty_or_unknown_series_is_nan(self, registry):
        import math

        h = registry.histogram("h", buckets=(1.0,))
        assert math.isnan(h.quantile(0.5))
        h.observe(0.5, shards="2")
        assert math.isnan(h.quantile(0.5, shards="4"))
        assert h.quantile(0.5, shards="2") == pytest.approx(0.5)

    def test_inf_bucket_clamps_to_largest_finite_bound(self, registry):
        h = registry.histogram("h", buckets=(1.0, 2.0))
        h.observe(50.0)
        assert h.quantile(0.99) == pytest.approx(2.0)

    def test_q_must_be_a_probability(self, registry):
        h = registry.histogram("h", buckets=(1.0,))
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_disabled_registry_observes_nothing(self):
        import math

        reg = MetricsRegistry(enabled=False)
        h = reg.histogram("h", buckets=(1.0,))
        h.observe(0.5)
        assert math.isnan(h.quantile(0.5))


class TestRegistry:
    def test_get_or_create_kind_checked(self, registry):
        c = registry.counter("x_total")
        assert registry.counter("x_total") is c
        with pytest.raises(ValueError):
            registry.gauge("x_total")

    def test_reset_keeps_instruments(self, registry):
        c = registry.counter("x_total")
        c.inc(5)
        registry.reset()
        assert registry.get("x_total") is c
        assert c.value() == 0

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("bad name")
        c = registry.counter("ok_total")
        with pytest.raises(ValueError):
            c.inc(**{"0bad": "v"})

    def test_collect_shape(self, registry):
        registry.counter("c_total", "a counter").inc(2, op="save")
        payload = registry.collect()
        assert payload["c_total"]["type"] == "counter"
        assert payload["c_total"]["samples"] == [
            {"labels": {"op": "save"}, "value": 2.0}
        ]

    def test_prometheus_output_lints_clean(self, registry):
        registry.counter("c_total", "a counter").inc(op="save")
        registry.gauge("g", "a gauge").set(1.5)
        registry.histogram("h", "a histogram", buckets=(1.0,)).observe(2.0)
        assert lint(registry.to_prometheus()) == []


class TestProcessRegistryAccounting:
    """Satellite: one shared accounting path, no double-counting."""

    def _tree(self, rng):
        disk = SimulatedDisk(
            DiskModel(t_seek=0.010, t_xfer=0.001, block_size=512)
        )
        return IQTree.build(rng.random((800, 6)), disk=disk)

    def test_disk_counters_match_ledger_exactly(self, rng, live_registry):
        """Engine deltas + single queries + ledger merges over the same
        disk leave the registry equal to the physical ledger delta --
        the disk counters are fed only by ``SimulatedDisk.read_blocks``.
        """
        tree = self._tree(rng)
        live_registry.reset()  # drop build-time I/O
        s0, b0, o0, e0 = (
            tree.disk.stats.seeks,
            tree.disk.stats.blocks_read,
            tree.disk.stats.blocks_overread,
            tree.disk.stats.elapsed,
        )
        queries = rng.random((6, 6))
        engine = tree.query_engine(pool=64)
        batch = engine.knn_batch(queries, k=3)
        single = nearest_neighbors(tree, queries[0], k=3)
        # Ledger arithmetic that must NOT feed the registry again:
        merged = batch.stats.io.merged_with(single.io)
        assert merged.blocks_read > 0
        scratch = IOStats(seeks=5, blocks_read=5, elapsed=1.0)
        scratch.reset()
        ledger = tree.disk.stats
        assert instruments.DISK_SEEKS.value() == ledger.seeks - s0
        assert (
            instruments.DISK_BLOCKS_READ.value() == ledger.blocks_read - b0
        )
        assert (
            instruments.DISK_BLOCKS_OVERREAD.value()
            == ledger.blocks_overread - o0
        )
        assert instruments.DISK_SIM_SECONDS.value() == pytest.approx(
            ledger.elapsed - e0
        )

    def test_iostats_round_trip(self):
        """merged_with and reset round-trip exactly, field for field."""
        a = IOStats(seeks=3, blocks_read=7, blocks_overread=2, elapsed=0.5)
        b = IOStats(seeks=1, blocks_read=4, blocks_overread=1, elapsed=0.25)
        merged = a.merged_with(b)
        assert (
            merged.seeks,
            merged.blocks_read,
            merged.blocks_overread,
            merged.elapsed,
        ) == (4, 11, 3, 0.75)
        merged.reset()
        assert merged == IOStats()

    def test_pool_counters_match_pool(self, rng, live_registry):
        tree = self._tree(rng)
        live_registry.reset()
        pool = BufferPool(32)
        engine = tree.query_engine(pool=pool)
        engine.knn_batch(rng.random((4, 6)), k=2)
        engine.knn_batch(rng.random((4, 6)), k=2)
        assert instruments.POOL_HITS.value() == pool.hits
        assert instruments.POOL_MISSES.value() == pool.misses

    def test_workload_exposition_lints_clean(self, rng, live_registry):
        tree = self._tree(rng)
        tree.query_engine(pool=32).knn_batch(rng.random((4, 6)), k=3)
        assert lint(live_registry.to_prometheus()) == []

    def test_pages_decoded_by_bits_totals(self, rng, live_registry):
        tree = self._tree(rng)
        live_registry.reset()
        engine = tree.query_engine()
        batch = engine.knn_batch(rng.random((3, 6)), k=2)
        decoded = sum(
            s["value"]
            for s in instruments.PAGES_DECODED._collect()
        )
        assert decoded == batch.stats.pages_read


class TestDiskModelValidation:
    """Satellite: non-positive disk parameters raise ValueError."""

    @pytest.mark.parametrize(
        "kwargs,field",
        [
            ({"t_seek": 0.0}, "t_seek"),
            ({"t_seek": -0.1}, "t_seek"),
            ({"t_xfer": 0.0}, "t_xfer"),
            ({"t_xfer": -1.0}, "t_xfer"),
            ({"block_size": 0}, "block_size"),
            ({"block_size": -8}, "block_size"),
        ],
    )
    def test_rejects_non_positive(self, kwargs, field):
        with pytest.raises(ValueError, match=f"{field} must be positive"):
            DiskModel(**kwargs)

    def test_message_names_the_value(self):
        with pytest.raises(ValueError, match="got 0.0"):
            DiskModel(t_seek=0.0)
