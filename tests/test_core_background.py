"""Tests for drift-triggered background re-quantization (PR 9).

The load-bearing property throughout: a maintenance sweep changes
query *cost*, never query *answers* -- the index is exact with respect
to its stored data at every quantization level, so every test can
demand bit-identical results across a sweep.
"""

import threading

import numpy as np
import pytest

import repro.core.maintenance as maintenance
from repro.exceptions import BuildError
from repro.core.maintenance import (
    MaintenanceLoop,
    MaintenanceManager,
    delete_point,
)
from repro.core.tree import IQTree
from repro.engine.engine import QueryEngine


@pytest.fixture
def tree(uniform_points, small_disk):
    return IQTree.build(uniform_points[:500], disk=small_disk)


def shrink_page(tree, page, keep=30):
    """Delete most of one page's points so its storable resolution
    rises (the classic drift: a page left much emptier than when the
    optimizer chose its bits)."""
    victims = tree._partitions[page].partition.indices[:-keep]
    for pid in victims:
        delete_point(tree, int(pid))
    tree._ensure_clean()
    return victims


class TestDirtyTracking:
    def test_fresh_tree_is_clean(self, tree):
        mgr = tree.maintenance_manager()
        assert mgr.dirty_pages() == []
        report = mgr.sweep()
        assert report.noop

    def test_structural_edits_dirty_their_pages(self, tree, rng):
        mgr = tree.maintenance_manager()
        tree.insert(rng.random(8))
        tree._ensure_clean()
        assert mgr.dirty_pages() != []

    def test_baseline_none_marks_everything_dirty(self, tree):
        mgr = MaintenanceManager(tree, baseline="none")
        assert mgr.dirty_pages() == list(range(tree.n_pages))

    def test_bad_parameters_rejected(self, tree):
        with pytest.raises(BuildError):
            MaintenanceManager(tree, drift_ratio=0.9)
        with pytest.raises(BuildError):
            MaintenanceManager(tree, baseline="bogus")

    def test_drift_report_escalates_to_full_scan(self, tree):
        mgr = tree.maintenance_manager(drift_ratio=1.25)

        class Calm:
            count = 50
            page_error_p50 = 0.05

        class Drifted:
            count = 50
            page_error_p50 = 2.0

        assert not mgr.observe_drift(Calm())
        assert mgr.dirty_pages() == []
        assert mgr.observe_drift(Drifted())
        # A freshly optimized tree has nothing suboptimal even under
        # the flag; the flag only widens the *scan*, it does not invent
        # dirty pages.
        shrunk = mgr.dirty_pages()
        assert isinstance(shrunk, list)

    def test_empty_drift_report_ignored(self, tree):
        mgr = tree.maintenance_manager()

        class Empty:
            count = 0
            page_error_p50 = float("nan")

        assert not mgr.observe_drift(Empty())


class TestSweep:
    def test_in_place_requantize(self, tree, rng):
        mgr = tree.maintenance_manager()
        shrink_page(tree, 0, keep=30)
        old_bits = tree._bits[0]
        quant_file = tree._quant_file
        queries = [rng.random(8) for _ in range(4)]
        before = [tree.nearest(q, k=5) for q in queries]

        report = mgr.sweep()

        assert report.requantized >= 1
        assert report.restructured == 0
        # Bits-only swap: same files, same extents, finer page.
        assert tree._quant_file is quant_file
        assert tree._bits[0] > old_bits
        for q, b in zip(queries, before):
            a = tree.nearest(q, k=5)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)

    def test_sweep_is_idempotent(self, tree):
        mgr = tree.maintenance_manager()
        shrink_page(tree, 0, keep=30)
        first = mgr.sweep()
        assert not first.noop
        assert mgr.sweep().noop

    def test_sweep_bumps_epoch(self, tree):
        mgr = tree.maintenance_manager()
        shrink_page(tree, 0, keep=30)
        epoch = tree.epoch
        report = mgr.sweep()
        assert report.requantized + report.restructured >= 1
        assert tree.epoch > epoch

    def test_requantize_invalidates_decoded_cache(self, tree, rng):
        """An in-place page swap must evict the stale decode, not serve
        coordinates quantized on the old (coarser) grid."""
        cache = tree.use_decoded_cache(64)
        mgr = tree.maintenance_manager()
        shrink_page(tree, 0, keep=30)
        q = rng.random(8)
        baseline = tree.nearest(q, k=5)  # warms the decoded cache
        report = mgr.sweep()
        assert report.requantized >= 1
        after = tree.nearest(q, k=5)
        assert np.array_equal(after.ids, baseline.ids)
        assert np.array_equal(after.distances, baseline.distances)
        assert cache is tree._decoded_cache

    def test_structural_sweep_after_severe_shrink(self, tree, rng):
        """Shrinking a page to a handful of points crosses the exact
        (32-bit) threshold -- not an in-place swap, a re-layout."""
        mgr = tree.maintenance_manager()
        shrink_page(tree, 0, keep=4)
        queries = [rng.random(8) for _ in range(3)]
        before = [tree.nearest(q, k=5) for q in queries]
        report = mgr.sweep()
        assert report.restructured >= 1
        for q, b in zip(queries, before):
            a = tree.nearest(q, k=5)
            assert np.array_equal(a.ids, b.ids)

    def test_failed_sweep_reaches_flight_recorder(
        self, tree, monkeypatch
    ):
        recorder = tree.use_flight_recorder(16)
        mgr = tree.maintenance_manager()
        shrink_page(tree, 0, keep=30)

        def boom(*args, **kwargs):
            raise RuntimeError("optimizer exploded")

        monkeypatch.setattr(maintenance, "optimize_partitions", boom)
        with pytest.raises(RuntimeError):
            mgr.sweep()
        faulted = recorder.records("faulted")
        assert any(r.kind == "maintenance" for r in faulted)


class TestQuarantineInteraction:
    def test_sweep_never_resurrects_a_quarantined_address(
        self, tree, rng
    ):
        """A dirty page whose quantized block is quarantined must be
        healed structurally (fresh extent), never rewritten in place at
        the proven-bad address."""
        ctx = tree.use_fault_tolerance()
        mgr = tree.maintenance_manager()
        shrink_page(tree, 0, keep=30)
        bad_address = tree._quant_file.extent_start + 0
        ctx.quarantine.add(bad_address)

        report = mgr.sweep()

        # The page was dirty and improvable, but the in-place path was
        # forbidden: it must have gone through the structural path.
        assert 0 in report.dirty
        assert report.restructured >= 1
        # The re-layout landed on fresh extents past the quarantined
        # address (extent allocation is monotone).
        assert tree._quant_file.extent_start > bad_address
        assert all(
            tree._quant_file.extent_start + j != bad_address
            for j in range(tree._quant_file.n_blocks)
        )

    def test_quarantined_tree_answers_exactly_after_sweep(
        self, tree, rng
    ):
        ctx = tree.use_fault_tolerance()
        mgr = tree.maintenance_manager()
        shrink_page(tree, 0, keep=30)
        ctx.quarantine.add(tree._quant_file.extent_start + 0)
        queries = [rng.random(8) for _ in range(3)]
        before = [tree.nearest(q, k=5) for q in queries]
        mgr.sweep()
        for q, b in zip(queries, before):
            a = tree.nearest(q, k=5)
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)


class TestConcurrency:
    """Sweeps racing query batches must be invisible in the answers."""

    def _churn_and_query(self, tree, engine, queries, k=4):
        """Query while a churn thread keeps rewriting quantized pages.

        The churn de-optimizes one page to a coarser grid (same
        machinery as the sweep's in-place swap) and lets the sweep
        re-finest it -- real page rewrites on every round, while the
        stored data never changes, so every batch must answer
        identically to a quiet tree.
        """
        from repro.core.optimizer import OptimizedPartition

        mgr = tree.maintenance_manager()
        victim = int(np.argmax(tree._bits < 32))
        fine_bits = int(tree._bits[victim])
        assert fine_bits < 32 and fine_bits > 2
        stop = threading.Event()
        sweep_error = []

        def churn():
            while not stop.is_set():
                try:
                    with tree._write_lock:
                        opt = tree._partitions[victim]
                        if opt.bits == fine_bits:
                            mgr._replace_page(
                                victim,
                                OptimizedPartition(
                                    opt.partition, fine_bits - 2
                                ),
                            )
                    mgr.maybe_sweep()
                except BaseException as exc:  # pragma: no cover
                    sweep_error.append(exc)
                    return

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            results = [engine.knn_batch(queries, k=k) for _ in range(6)]
        finally:
            stop.set()
            thread.join()
        assert not sweep_error
        return results

    def test_batches_identical_under_concurrent_sweeps(
        self, uniform_points, small_disk, rng
    ):
        data = uniform_points[:500]
        quiet = IQTree.build(data, disk=small_disk)
        engine_quiet = QueryEngine(quiet)
        queries = rng.random((12, 8))
        want = engine_quiet.knn_batch(queries, k=4)

        noisy = IQTree.build(data, disk=small_disk)
        got_all = self._churn_and_query(
            noisy, QueryEngine(noisy), queries
        )
        for got in got_all:
            for w, g in zip(want, got):
                assert np.array_equal(w.ids, g.ids)
                assert np.array_equal(w.distances, g.distances)

    def test_loop_with_process_backend_batches(
        self, uniform_points, small_disk, rng
    ):
        data = uniform_points[:500]
        quiet = IQTree.build(data, disk=small_disk)
        queries = rng.random((8, 8))
        want = QueryEngine(quiet).knn_batch(queries, k=3)

        noisy = IQTree.build(data, disk=small_disk)
        engine = QueryEngine(noisy, workers=2, backend="process")
        try:
            got_all = self._churn_and_query(noisy, engine, queries, k=3)
            for got in got_all:
                for w, g in zip(want, got):
                    assert np.array_equal(w.ids, g.ids)
                    assert np.array_equal(w.distances, g.distances)
        finally:
            engine.close()


class TestMaintenanceLoop:
    def test_loop_sweeps_until_clean(self, tree):
        mgr = tree.maintenance_manager()
        shrink_page(tree, 0, keep=30)
        loop = MaintenanceLoop(mgr, interval=0.001).start()
        try:
            deadline = threading.Event()
            for _ in range(200):
                if mgr.dirty_pages() == []:
                    break
                deadline.wait(0.005)
        finally:
            sweeps = loop.stop()
        assert sweeps >= 1
        assert mgr.dirty_pages() == []

    def test_loop_propagates_sweep_errors(self, tree, monkeypatch):
        mgr = tree.maintenance_manager()
        shrink_page(tree, 0, keep=30)

        def boom(*args, **kwargs):
            raise RuntimeError("sweep died")

        monkeypatch.setattr(mgr, "sweep", boom)
        loop = MaintenanceLoop(mgr, interval=0.001).start()
        for _ in range(200):
            if loop._error is not None:
                break
            threading.Event().wait(0.005)
        with pytest.raises(RuntimeError):
            loop.stop()

    def test_double_start_rejected(self, tree):
        loop = MaintenanceLoop(tree.maintenance_manager())
        loop.start()
        try:
            with pytest.raises(BuildError):
                loop.start()
        finally:
            loop.stop()
