"""Tests for the in-memory Partition type."""

import numpy as np
import pytest

from repro.exceptions import BuildError
from repro.core.partition import Partition
from repro.geometry.mbr import MBR


class TestConstruction:
    def test_of_builds_tight_mbr(self, rng):
        data = rng.random((100, 4))
        idx = np.arange(0, 50)
        part = Partition.of(data, idx)
        assert part.size == 50
        assert part.mbr == MBR.of_points(data[:50])

    def test_points_view(self, rng):
        data = rng.random((20, 3))
        part = Partition.of(data, np.array([3, 7, 9]))
        assert np.array_equal(part.points(data), data[[3, 7, 9]])

    def test_empty_rejected(self, rng):
        with pytest.raises(BuildError):
            Partition.of(rng.random((10, 2)), np.array([], dtype=np.int64))

    def test_bad_shape_rejected(self):
        with pytest.raises(BuildError):
            Partition(np.zeros((2, 2), dtype=np.int64), MBR.unit_cube(2))


class TestStats:
    def test_storable_bits_matches_capacity(self, rng):
        data = rng.random((3000, 16))
        part = Partition.of(data, np.arange(3000))
        # 3000 points in 16-d fit a 1-bit 8K page (capacity 4092).
        assert part.storable_bits(8192) == 1

    def test_small_partition_gets_exact_bits(self, rng):
        data = rng.random((10, 16))
        part = Partition.of(data, np.arange(10))
        assert part.storable_bits(8192) == 32

    def test_stats_fields(self, rng):
        data = rng.random((100, 4))
        part = Partition.of(data, np.arange(100))
        stats = part.stats(8192)
        assert stats.m == 100
        assert stats.bits == part.storable_bits(8192)
        assert stats.side_lengths == tuple(part.mbr.extents.tolist())

    def test_stats_rejects_oversized(self, rng):
        data = rng.random((5000, 16))
        part = Partition.of(data, np.arange(5000))
        with pytest.raises(BuildError):
            part.stats(8192)

    def test_repr(self, rng):
        data = rng.random((5, 2))
        assert "size=5" in repr(Partition.of(data, np.arange(5)))
