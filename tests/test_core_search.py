"""Tests for IQ-tree nearest-neighbor and range search."""

import numpy as np
import pytest

from repro.core.tree import IQTree
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM
from repro.storage.disk import SimulatedDisk
from tests.conftest import brute_force_knn


@pytest.fixture
def tree(uniform_points, small_disk):
    return IQTree.build(uniform_points, disk=small_disk)


class TestNearestCorrectness:
    @pytest.mark.parametrize("scheduler", ["optimized", "standard"])
    def test_single_nn_matches_brute_force(self, tree, rng, scheduler):
        for _ in range(10):
            q = rng.random(8)
            res = tree.nearest(q, scheduler=scheduler)
            ids, dists = brute_force_knn(tree.points, q, 1, EUCLIDEAN)
            assert res.distances[0] == pytest.approx(dists[0])
            assert res.ids[0] == ids[0] or res.distances[0] == dists[0]

    @pytest.mark.parametrize("k", [1, 3, 10, 25])
    def test_knn_matches_brute_force(self, tree, rng, k):
        q = rng.random(8)
        res = tree.nearest(q, k=k)
        _ids, dists = brute_force_knn(tree.points, q, k, EUCLIDEAN)
        assert np.allclose(res.distances, dists)

    def test_distances_sorted(self, tree, rng):
        res = tree.nearest(rng.random(8), k=7)
        assert np.all(np.diff(res.distances) >= 0)

    def test_query_far_outside_data_space(self, tree):
        q = np.full(8, 10.0)
        res = tree.nearest(q, k=2)
        _ids, dists = brute_force_knn(tree.points, q, 2, EUCLIDEAN)
        assert np.allclose(res.distances, dists)

    def test_query_on_data_point(self, tree):
        q = tree.points[123]
        res = tree.nearest(q, k=1)
        assert res.distances[0] == 0.0

    def test_max_metric_tree(self, uniform_points, small_disk):
        tree = IQTree.build(
            uniform_points, disk=small_disk, metric="maximum"
        )
        rng = np.random.default_rng(0)
        for _ in range(5):
            q = rng.random(8)
            res = tree.nearest(q, k=3)
            _ids, dists = brute_force_knn(tree.points, q, 3, MAXIMUM)
            assert np.allclose(res.distances, dists)

    def test_no_quantization_tree_correct(self, uniform_points, small_disk):
        tree = IQTree.build(
            uniform_points, disk=small_disk, optimize=False
        )
        rng = np.random.default_rng(1)
        q = rng.random(8)
        res = tree.nearest(q, k=5)
        _ids, dists = brute_force_knn(tree.points, q, 5, EUCLIDEAN)
        assert np.allclose(res.distances, dists)
        assert res.refinements == 0  # exact pages never refine

    def test_clustered_data_correct(self, clustered_points, small_disk):
        tree = IQTree.build(clustered_points, disk=small_disk)
        rng = np.random.default_rng(2)
        for _ in range(5):
            q = rng.random(6)
            res = tree.nearest(q, k=4)
            _ids, dists = brute_force_knn(tree.points, q, 4, EUCLIDEAN)
            assert np.allclose(res.distances, dists)


class TestSchedulers:
    def test_both_schedulers_agree(self, tree, rng):
        for _ in range(5):
            q = rng.random(8)
            opt = tree.nearest(q, k=3, scheduler="optimized")
            std = tree.nearest(q, k=3, scheduler="standard")
            assert np.allclose(opt.distances, std.distances)

    def test_optimized_no_slower_on_average(self, tree, rng):
        queries = rng.random((15, 8))
        opt_total = std_total = 0.0
        for q in queries:
            tree.disk.park()
            opt_total += tree.nearest(q, scheduler="optimized").io.elapsed
            tree.disk.park()
            std_total += tree.nearest(q, scheduler="standard").io.elapsed
        assert opt_total <= std_total * 1.05

    def test_standard_reads_one_page_per_seek(self, tree, rng):
        q = rng.random(8)
        tree.disk.park()
        res = tree.nearest(q, scheduler="standard")
        # Standard scheduling never over-reads.
        assert res.io.blocks_overread == 0


class TestIOAccounting:
    def test_io_delta_positive(self, tree, rng):
        res = tree.nearest(rng.random(8))
        assert res.io.elapsed > 0
        assert res.io.blocks_read >= 1

    def test_pages_read_bounded(self, tree, rng):
        res = tree.nearest(rng.random(8))
        assert 1 <= res.pages_read <= tree.n_pages

    def test_directory_charge_toggle(self, uniform_points, small_disk):
        charged = IQTree.build(uniform_points, disk=small_disk)
        free = IQTree.build(
            uniform_points,
            disk=SimulatedDisk(small_disk.model),
            charge_directory=False,
        )
        q = np.full(8, 0.5)
        charged.disk.park()
        free.disk.park()
        t_charged = charged.nearest(q).io.elapsed
        t_free = free.nearest(q).io.elapsed
        assert t_charged > t_free


class TestRangeSearch:
    @pytest.mark.parametrize("radius", [0.0, 0.2, 0.5, 1.2])
    def test_matches_brute_force(self, tree, rng, radius):
        q = rng.random(8)
        res = tree.range_query(q, radius)
        dists = EUCLIDEAN.distances(q, tree.points)
        expected = set(np.flatnonzero(dists <= radius).tolist())
        assert set(res.ids.tolist()) == expected

    def test_distances_reported_sorted_and_true(self, tree, rng):
        q = rng.random(8)
        res = tree.range_query(q, 0.8)
        assert np.all(np.diff(res.distances) >= 0)
        # Reported distances are the true query-to-point distances.
        expected = EUCLIDEAN.distances(q, tree.points[res.ids])
        assert np.allclose(res.distances, expected)

    def test_empty_result(self, tree):
        q = np.full(8, 50.0)
        res = tree.range_query(q, 0.1)
        assert res.ids.size == 0

    def test_whole_space_radius(self, tree):
        q = np.full(8, 0.5)
        res = tree.range_query(q, 10.0)
        assert res.ids.size == tree.n_points

    def test_uses_batched_fetch(self, tree):
        q = np.full(8, 0.5)
        tree.disk.park()
        res = tree.range_query(q, 10.0)
        # Reading every page must not pay one seek per page.
        assert res.io.seeks < tree.n_pages / 2 + 2
