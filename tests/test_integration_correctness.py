"""Cross-method integration tests: every technique must return the same
exact answers on the same data, for every workload the paper uses."""

import numpy as np
import pytest

from repro.baselines import SequentialScan, VAFile, XTree
from repro.core.tree import IQTree
from repro.datasets import (
    cad_like,
    color_histogram_like,
    make_workload,
    uniform,
    weather_like,
)
from repro.experiments.harness import experiment_disk
from repro.geometry.metrics import EUCLIDEAN


WORKLOADS = [
    ("uniform-8d", lambda: make_workload(uniform, 1500, 5, seed=1, dim=8)),
    ("uniform-16d", lambda: make_workload(uniform, 1500, 5, seed=2, dim=16)),
    ("cad-16d", lambda: make_workload(cad_like, 1500, 5, seed=3)),
    ("color-16d", lambda: make_workload(color_histogram_like, 1500, 5, seed=4)),
    ("weather-9d", lambda: make_workload(weather_like, 1500, 5, seed=5)),
]


@pytest.mark.parametrize("name,factory", WORKLOADS, ids=[w[0] for w in WORKLOADS])
class TestAllMethodsAgree:
    def test_knn_agreement(self, name, factory):
        data, queries = factory()
        tree = IQTree.build(data, disk=experiment_disk())
        xtree = XTree(data, disk=experiment_disk())
        vafile = VAFile(data, bits=4, disk=experiment_disk())
        scan = SequentialScan(data, disk=experiment_disk())
        for q in queries:
            reference = scan.nearest(q, k=5)
            for method in (tree, xtree, vafile):
                answer = method.nearest(q, k=5)
                assert np.allclose(
                    answer.distances, reference.distances
                ), f"{type(method).__name__} disagrees on {name}"

    def test_range_agreement(self, name, factory):
        data, queries = factory()
        tree = IQTree.build(data, disk=experiment_disk())
        xtree = XTree(data, disk=experiment_disk())
        vafile = VAFile(data, bits=4, disk=experiment_disk())
        scan = SequentialScan(data, disk=experiment_disk())
        q = queries[0]
        # Radius that catches a mid-sized result set.
        radius = float(np.partition(EUCLIDEAN.distances(q, data), 20)[20])
        reference = set(scan.range_query(q, radius).ids.tolist())
        for method in (tree, xtree, vafile):
            got = set(method.range_query(q, radius).ids.tolist())
            assert got == reference, f"{type(method).__name__} on {name}"


class TestSchedulerAgreement:
    def test_iq_schedulers_identical_answers(self):
        data, queries = make_workload(uniform, 2000, 8, seed=9, dim=10)
        tree = IQTree.build(data, disk=experiment_disk())
        for q in queries:
            a = tree.nearest(q, k=3, scheduler="optimized")
            b = tree.nearest(q, k=3, scheduler="standard")
            assert np.allclose(a.distances, b.distances)


class TestMetricsAgreement:
    @pytest.mark.parametrize("metric", ["euclidean", "maximum", "l1"])
    def test_all_methods_with_metric(self, metric):
        data, queries = make_workload(uniform, 1000, 3, seed=11, dim=6)
        tree = IQTree.build(data, disk=experiment_disk(), metric=metric)
        scan = SequentialScan(data, disk=experiment_disk(), metric=metric)
        for q in queries:
            assert np.allclose(
                tree.nearest(q, k=4).distances,
                scan.nearest(q, k=4).distances,
            )


class TestCompressionEffect:
    def test_iqtree_quantized_level_smaller_than_exact(self):
        """The compressed second level must actually be smaller than the
        exact data -- the premise of the whole paper."""
        data, _ = make_workload(uniform, 4000, 2, seed=13, dim=16)
        tree = IQTree.build(data, disk=experiment_disk())
        sizes = tree.size_summary()
        if np.all(tree.page_bits == 32):
            pytest.skip("optimizer chose exact pages at this scale")
        assert sizes["quantized_blocks"] < sizes["exact_blocks"]

    def test_deeper_quantization_changes_refinements(self):
        data, queries = make_workload(uniform, 3000, 5, seed=14, dim=12)
        coarse = IQTree.build(
            data, disk=experiment_disk(), optimize=False, fixed_bits=1
        )
        fine = IQTree.build(
            data, disk=experiment_disk(), optimize=False, fixed_bits=8
        )
        coarse_ref = sum(coarse.nearest(q).refinements for q in queries)
        fine_ref = sum(fine.nearest(q).refinements for q in queries)
        assert fine_ref <= coarse_ref
