"""Extra coverage for reporting and figure-result plumbing."""

import numpy as np
import pytest

from repro.experiments.harness import FigureResult, WorkloadStats
from repro.experiments.report import format_figure, format_sweep


def make_stats(name, times):
    times = np.asarray(times, dtype=np.float64)
    zeros = np.zeros_like(times)
    return WorkloadStats(
        name=name, times=times, seeks=zeros, blocks=zeros,
        refinements=zeros,
    )


class TestWorkloadStats:
    def test_aggregates(self):
        stats = make_stats("m", [0.1, 0.2, 0.3])
        assert stats.mean_time == pytest.approx(0.2)
        assert stats.std_time == pytest.approx(np.std([0.1, 0.2, 0.3]))
        assert stats.mean_seeks == 0.0
        assert stats.mean_refinements == 0.0


class TestFigureResultDetails:
    def test_details_store_full_stats(self):
        fig = FigureResult("f", "t", "x", [1, 2])
        s1 = make_stats("m", [0.5])
        fig.add("m", 1, s1)
        assert fig.details["m"][1] is s1

    def test_multiple_series_alignment(self):
        fig = FigureResult("f", "t", "x", [10, 20, 30])
        for x, t in zip([10, 20, 30], [0.1, 0.2, 0.3]):
            fig.add("a", x, make_stats("a", [t]))
            fig.add("b", x, make_stats("b", [t * 2]))
        assert fig.ratio("b", "a") == pytest.approx([2.0, 2.0, 2.0])


class TestFormatting:
    def test_table_alignment(self):
        fig = FigureResult("figN", "demo title", "n", [100, 20000])
        fig.add("method-with-long-name", 100, make_stats("m", [0.123456]))
        fig.add("method-with-long-name", 20000, make_stats("m", [1.5]))
        text = format_figure(fig)
        lines = text.splitlines()
        # Header, separator, and data rows share one width per column.
        assert "figN: demo title" in lines[0]
        data_lines = [l for l in lines if l.strip() and ":" not in l]
        widths = {len(l) for l in data_lines}
        assert len(widths) == 1

    def test_precision_parameter(self):
        fig = FigureResult("f", "t", "x", [1])
        fig.add("m", 1, make_stats("m", [0.123456789]))
        assert "0.12" in format_figure(fig, precision=2)
        assert "0.123457" in format_figure(fig, precision=6)

    def test_sweep_format(self):
        text = format_sweep({3: 1.0}, label="radius")
        assert text == "radius=3: 1.0000s"
