"""Fault-injection suite: every corruption mode must be *detected*.

The persistence layer's contract is that a damaged container never
produces garbage query results -- it produces a clean
:class:`~repro.exceptions.StorageError` whose message names the failing
section.  These tests drive :mod:`repro.storage.faults` against real
containers to prove it for truncation, torn writes, and bit flips in
every section, and prove the atomic-save protocol keeps the previous
container intact through a simulated power loss.
"""

import pytest

from repro.cli import main
from repro.exceptions import IntegrityError, StorageError
from repro.core.tree import IQTree
from repro.storage.faults import FaultInjector, PowerLoss, torn_save
from repro.storage.persistence import (
    load_iqtree,
    save_iqtree,
    verify_container,
)

SECTIONS = ("header", "meta", "index", "payload")


@pytest.fixture
def tree(uniform_points, small_disk):
    return IQTree.build(uniform_points[:600], disk=small_disk)


@pytest.fixture
def container(tree, tmp_path):
    path = tmp_path / "index.iqt"
    save_iqtree(tree, path)
    return path


@pytest.fixture
def injector(container):
    return FaultInjector(container)


def assert_detected(path, section: str) -> StorageError:
    """Loading must fail with a StorageError naming ``section``."""
    with pytest.raises(StorageError, match=section) as excinfo:
        load_iqtree(path)
    assert not verify_container(path).ok
    return excinfo.value


class TestBitFlips:
    @pytest.mark.parametrize("section", SECTIONS)
    def test_flipped_bit_detected_and_named(self, injector, container, section):
        # Offset 8 skips the magic inside the header section; for the
        # other sections any offset works -- CRCs have no blind spots.
        injector.flip_bit_in(section, position=8, bit=3)
        exc = assert_detected(container, section)
        assert isinstance(exc, IntegrityError)
        assert exc.section == section

    @pytest.mark.parametrize("section", SECTIONS)
    def test_flipped_low_bit_near_section_end(self, injector, container, section):
        _, stop = injector.section_span(section)
        injector.flip_bit(stop - 1, bit=0)
        assert not verify_container(container).ok
        with pytest.raises(StorageError):
            load_iqtree(container)

    def test_corrupted_magic_rejected(self, injector, container):
        injector.flip_bit(0)
        with pytest.raises(StorageError, match="not an IQ-tree"):
            load_iqtree(container)
        assert not verify_container(container).ok

    def test_restore_heals_every_fault(self, injector, container):
        for section in SECTIONS:
            injector.flip_bit_in(section, position=8)
        injector.restore()
        load_iqtree(container, verify=True)
        assert verify_container(container).ok


class TestTruncation:
    def test_truncated_header(self, injector, container):
        injector.truncate_to(20)  # mid fixed header
        exc = assert_detected(container, "header")
        assert "truncated" in str(exc)

    def test_truncated_payload(self, injector, container):
        injector.truncate_tail(64)
        exc = assert_detected(container, "payload")
        assert "truncated" in str(exc)

    @pytest.mark.parametrize("fraction", [0.05, 0.35, 0.7, 0.98])
    def test_torn_write_at_any_fraction(self, injector, container, fraction):
        """A partial copy/write of a container is caught wherever it
        stopped: the missing tail always un-verifies some section."""
        injector.tear(fraction)
        with pytest.raises(StorageError) as excinfo:
            load_iqtree(container)
        assert any(s in str(excinfo.value) for s in SECTIONS)
        assert not verify_container(container).ok

    def test_empty_file(self, injector, container):
        injector.truncate_to(0)
        with pytest.raises(StorageError):
            load_iqtree(container)
        assert not verify_container(container).ok


class TestAtomicSaveUnderPowerLoss:
    def test_old_container_survives_torn_save(self, tree, container, rng):
        pristine = container.read_bytes()
        tree.insert(rng.random(8))  # make the new container different
        with pytest.raises(PowerLoss):
            torn_save(tree, container, byte_budget=200)
        # The destination is byte-identical and still loads cleanly;
        # only a .tmp with the partial write remains as crash debris.
        assert container.read_bytes() == pristine
        load_iqtree(container, verify=True)
        debris = container.with_name(container.name + ".tmp")
        assert debris.exists() and debris.stat().st_size == 200

    def test_next_save_overwrites_crash_debris(self, tree, container, rng):
        tree.insert(rng.random(8))
        with pytest.raises(PowerLoss):
            torn_save(tree, container, byte_budget=64)
        save_iqtree(tree, container)
        loaded = load_iqtree(container, verify=True)
        assert loaded.n_points == tree.n_points
        assert not container.with_name(container.name + ".tmp").exists()

    def test_partial_temp_file_is_itself_detected(self, tree, tmp_path):
        """Even mistaking the debris for a container is safe."""
        path = tmp_path / "fresh.iqt"
        with pytest.raises(PowerLoss):
            torn_save(tree, path, byte_budget=300)
        assert not path.exists()
        debris = tmp_path / "fresh.iqt.tmp"
        with pytest.raises(StorageError):
            load_iqtree(debris)


class TestFsckCli:
    def test_fsck_passes_on_fresh_container(self, container, capsys):
        assert main(["fsck", str(container)]) == 0
        out = capsys.readouterr().out
        assert "status: clean" in out
        for section in SECTIONS:
            assert section in out

    @pytest.mark.parametrize("section", ("meta", "index", "payload"))
    def test_fsck_fails_naming_corrupt_section(
        self, injector, container, section, capsys
    ):
        injector.flip_bit_in(section, position=8)
        assert main(["fsck", str(container)]) == 1
        out = capsys.readouterr().out
        assert f"status: corrupt ({section})" in out

    def test_fsck_reports_all_bad_sections(self, injector, container, capsys):
        injector.flip_bit_in("meta", position=8)
        injector.flip_bit_in("payload", position=8)
        assert main(["fsck", str(container)]) == 1
        out = capsys.readouterr().out
        assert "corrupt (meta, payload)" in out


class TestInjectorValidation:
    def test_bad_offsets_rejected(self, injector):
        with pytest.raises(StorageError):
            injector.flip_bit(injector.size)
        with pytest.raises(StorageError):
            injector.truncate_to(injector.size + 1)
        with pytest.raises(StorageError):
            injector.tear(1.5)
        with pytest.raises(StorageError):
            injector.flip_bit_in("payload", position=10**9)

    def test_unknown_section_rejected(self, injector):
        with pytest.raises(KeyError):
            injector.section_span("footer")
