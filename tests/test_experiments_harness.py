"""Tests for the experiment harness."""

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.baselines.scan import SequentialScan
from repro.core.tree import IQTree
from repro.datasets import make_workload, uniform
from repro.experiments.harness import (
    FigureResult,
    best_vafile,
    experiment_disk,
    run_nn_workload,
)
from repro.experiments.report import format_figure, format_sweep


@pytest.fixture(scope="module")
def workload():
    return make_workload(uniform, n=1500, n_queries=5, seed=0, dim=6)


class TestRunWorkload:
    def test_aggregates_per_query(self, workload, small_disk):
        data, queries = workload
        scan = SequentialScan(data, disk=small_disk)
        stats = run_nn_workload(scan, queries, k=2)
        assert stats.times.shape == (5,)
        assert stats.mean_time > 0
        assert stats.mean_seeks >= 1
        assert stats.name == "scan"

    def test_custom_nearest_callable(self, workload):
        data, queries = workload
        tree = IQTree.build(data, disk=experiment_disk())
        stats = run_nn_workload(
            tree,
            queries,
            nearest=lambda q: tree.nearest(q, k=1, scheduler="standard"),
            name="iq-std",
        )
        assert stats.name == "iq-std"
        assert np.all(stats.times > 0)

    def test_parks_disk_between_queries(self, workload, small_disk):
        """Each query pays its own initial seek."""
        data, queries = workload
        scan = SequentialScan(data, disk=small_disk)
        stats = run_nn_workload(scan, queries)
        assert np.all(stats.seeks >= 1)

    def test_empty_queries_rejected(self, workload, small_disk):
        data, _queries = workload
        scan = SequentialScan(data, disk=small_disk)
        with pytest.raises(ReproError):
            run_nn_workload(scan, np.empty((0, 6)))


class TestBestVAFile:
    def test_picks_minimum(self, workload):
        data, queries = workload
        va, stats, sweep = best_vafile(
            data, queries, bits_candidates=(2, 4, 6),
            disk_factory=experiment_disk,
        )
        assert stats.mean_time == pytest.approx(min(sweep.values()))
        assert sweep[va.bits] == pytest.approx(stats.mean_time)
        assert stats.name == "va-file"

    def test_empty_candidates_rejected(self, workload):
        data, queries = workload
        with pytest.raises(ReproError):
            best_vafile(data, queries, bits_candidates=())


class TestFigureResult:
    def test_add_and_ratio(self):
        result = FigureResult("figX", "title", "n", [1, 2])

        class FakeStats:
            def __init__(self, t):
                self.mean_time = t

        result.add("a", 1, FakeStats(2.0))
        result.add("a", 2, FakeStats(4.0))
        result.add("b", 1, FakeStats(1.0))
        result.add("b", 2, FakeStats(1.0))
        assert result.series["a"] == [2.0, 4.0]
        assert result.ratio("a", "b") == [2.0, 4.0]

    def test_ratio_unknown_series(self):
        result = FigureResult("figX", "t", "n", [1])
        with pytest.raises(ReproError):
            result.ratio("a", "b")

    def test_format_figure(self):
        result = FigureResult("figX", "demo", "n", [10, 20])

        class FakeStats:
            mean_time = 0.5

        result.add("m1", 10, FakeStats())
        result.add("m1", 20, FakeStats())
        text = format_figure(result)
        assert "figX: demo" in text
        assert "m1" in text
        assert "0.5000" in text

    def test_format_sweep(self):
        text = format_sweep({2: 0.5, 4: 0.25})
        assert "bits=2: 0.5000s" in text
        assert "bits=4: 0.2500s" in text


class TestExperimentDisk:
    def test_scale_model_ratio(self):
        disk = experiment_disk()
        assert disk.model.block_size == 2048
        assert disk.model.overread_window == pytest.approx(12.5)
