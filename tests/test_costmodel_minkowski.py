"""Tests for the refinement-probability model (eqs. 10-15)."""

import numpy as np
import pytest

from repro.exceptions import CostModelError
from repro.costmodel.minkowski import (
    cell_volume,
    minkowski_cell_volume,
    refinement_probability,
)
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM


class TestCellVolume:
    def test_formula(self):
        # V_mbr / 2^(d*g): 2x4 box at g=1 in 2-d -> 8 / 4 = 2.
        assert cell_volume(np.array([2.0, 4.0]), 1) == pytest.approx(2.0)

    def test_shrinks_exponentially_with_bits(self):
        sides = np.array([1.0, 1.0, 1.0])
        v1 = cell_volume(sides, 1)
        v2 = cell_volume(sides, 2)
        assert v1 == pytest.approx(8 * v2)

    def test_rejects_zero_bits(self):
        with pytest.raises(CostModelError):
            cell_volume(np.ones(2), 0)


class TestMinkowskiCellVolume:
    def test_max_metric_closed_form(self):
        sides = np.array([1.0, 1.0])
        got = minkowski_cell_volume(sides, 1, 0.25, MAXIMUM)
        # Cell sides 0.5; (0.5 + 0.5)^2 = 1.
        assert got == pytest.approx(1.0)

    def test_decreasing_in_bits(self):
        sides = np.full(6, 0.5)
        vols = [
            minkowski_cell_volume(sides, g, 0.1, EUCLIDEAN)
            for g in (1, 2, 4, 8)
        ]
        assert all(a > b for a, b in zip(vols, vols[1:]))

    def test_floor_is_ball_volume(self):
        # As g -> inf the cell vanishes and the sum tends to the ball.
        sides = np.full(4, 1.0)
        v = minkowski_cell_volume(sides, 30, 0.2, EUCLIDEAN)
        assert v == pytest.approx(EUCLIDEAN.ball_volume(0.2, 4), rel=1e-3)


class TestRefinementProbability:
    def test_in_unit_interval(self, rng):
        for _ in range(20):
            sides = rng.random(8) + 0.01
            p = refinement_probability(
                100, sides, int(rng.integers(1, 31)), 10000
            )
            assert 0.0 <= p <= 1.0

    def test_exact_pages_never_refine(self):
        assert refinement_probability(10, np.ones(4), 32, 1000) == 0.0

    def test_monotonically_decreasing_in_bits(self):
        """The paper's key monotonicity property (Section 3.4)."""
        sides = np.full(8, 0.3)
        probs = [
            refinement_probability(200, sides, g, 50_000)
            for g in range(1, 32)
        ]
        assert all(a >= b for a, b in zip(probs, probs[1:]))

    def test_decrease_has_diminishing_returns(self):
        """First splits save more than later ones (second derivative > 0).

        The optimizer's greedy optimality proof rests on this.
        """
        sides = np.full(4, 0.4)
        probs = [
            refinement_probability(500, sides, g, 100_000)
            for g in range(1, 12)
        ]
        drops = [a - b for a, b in zip(probs, probs[1:])]
        # Skip any leading saturated (clamped-at-1) region.
        active = [d for d in drops if d > 0]
        assert all(a >= b - 1e-15 for a, b in zip(active, active[1:]))

    def test_fractal_dim_changes_probability(self):
        sides = np.full(8, 0.25)
        uniform_p = refinement_probability(100, sides, 4, 10_000)
        fractal_p = refinement_probability(
            100, sides, 4, 10_000, fractal_dim=3.0
        )
        assert fractal_p != pytest.approx(uniform_p)

    def test_max_metric_supported(self):
        p = refinement_probability(
            100, np.full(4, 0.5), 4, 10_000, metric=MAXIMUM
        )
        assert 0.0 <= p <= 1.0

    def test_knn_raises_probability(self):
        sides = np.full(6, 0.5)
        p1 = refinement_probability(100, sides, 6, 10_000, k=1)
        p10 = refinement_probability(100, sides, 6, 10_000, k=10)
        assert p10 >= p1

    def test_invalid_inputs(self):
        with pytest.raises(CostModelError):
            refinement_probability(100, np.ones(2), 4, 0)
        with pytest.raises(CostModelError):
            refinement_probability(100, np.ones(2), 4, 100, fractal_dim=5.0)
