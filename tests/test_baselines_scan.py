"""Tests for the sequential-scan baseline."""

import numpy as np
import pytest

from repro.exceptions import BuildError, SearchError
from repro.baselines.scan import SequentialScan
from repro.geometry.metrics import EUCLIDEAN, MAXIMUM
from tests.conftest import brute_force_knn


@pytest.fixture
def scan(uniform_points, small_disk):
    return SequentialScan(uniform_points, disk=small_disk)


class TestCorrectness:
    @pytest.mark.parametrize("k", [1, 5, 20])
    def test_knn_matches_brute_force(self, scan, rng, k):
        q = rng.random(8)
        answer = scan.nearest(q, k=k)
        _ids, dists = brute_force_knn(scan.points, q, k, EUCLIDEAN)
        assert np.allclose(answer.distances, dists)

    def test_max_metric(self, uniform_points, small_disk):
        scan = SequentialScan(
            uniform_points, disk=small_disk, metric=MAXIMUM
        )
        q = np.full(8, 0.3)
        answer = scan.nearest(q, k=2)
        _ids, dists = brute_force_knn(scan.points, q, 2, MAXIMUM)
        assert np.allclose(answer.distances, dists)

    def test_range_query(self, scan, rng):
        q = rng.random(8)
        answer = scan.range_query(q, 0.6)
        dists = EUCLIDEAN.distances(q, scan.points)
        expected = set(np.flatnonzero(dists <= 0.6).tolist())
        assert set(answer.ids.tolist()) == expected


class TestCost:
    def test_cost_is_one_seek_plus_full_transfer(self, scan):
        scan.disk.park()
        answer = scan.nearest(np.full(8, 0.5))
        model = scan.disk.model
        n_blocks = scan._file.n_blocks
        assert answer.io.seeks == 1
        assert answer.io.blocks_read == n_blocks
        assert answer.io.elapsed == pytest.approx(
            model.t_seek + n_blocks * model.t_xfer
        )

    def test_cost_independent_of_query(self, scan, rng):
        scan.disk.park()
        t1 = scan.nearest(rng.random(8)).io.elapsed
        scan.disk.park()
        t2 = scan.nearest(rng.random(8) * 5).io.elapsed
        assert t1 == pytest.approx(t2)

    def test_cost_linear_in_n(self, uniform_points, small_disk):
        from repro.storage.disk import SimulatedDisk

        half = SequentialScan(
            uniform_points[:1000],
            disk=SimulatedDisk(small_disk.model),
        )
        full = SequentialScan(uniform_points, disk=small_disk)
        half.disk.park()
        full.disk.park()
        t_half = half.nearest(np.full(8, 0.5)).io.elapsed
        t_full = full.nearest(np.full(8, 0.5)).io.elapsed
        assert t_full > 1.5 * t_half


class TestValidation:
    def test_empty_rejected(self, small_disk):
        with pytest.raises(BuildError):
            SequentialScan(np.empty((0, 4)), disk=small_disk)

    def test_bad_k(self, scan):
        with pytest.raises(SearchError):
            scan.nearest(np.zeros(8), k=0)

    def test_bad_query_shape(self, scan):
        with pytest.raises(SearchError):
            scan.nearest(np.zeros(4))

    def test_negative_radius(self, scan):
        with pytest.raises(SearchError):
            scan.range_query(np.zeros(8), -0.5)
