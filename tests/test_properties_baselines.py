"""Hypothesis property tests on the baseline index structures.

The IQ-tree's property tests live in test_properties.py; these cover
the comparison techniques with the same contract: exact agreement with
brute force on arbitrary random inputs.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import SequentialScan, VAFile, XTree
from repro.core.tree import canonicalize
from repro.geometry.metrics import EUCLIDEAN
from repro.storage.disk import DiskModel, SimulatedDisk


def _small_disk():
    return SimulatedDisk(
        DiskModel(t_seek=0.01, t_xfer=0.001, block_size=512)
    )


class TestVAFileProperties:
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(5, 200),
        dim=st.integers(1, 8),
        bits=st.integers(1, 8),
        k=st.integers(1, 4),
    )
    @settings(max_examples=25, deadline=None)
    def test_knn_matches_brute_force(self, seed, n, dim, bits, k):
        rng = np.random.default_rng(seed)
        data = canonicalize(rng.random((n, dim)))
        k = min(k, n)
        va = VAFile(data, bits=bits, disk=_small_disk())
        query = canonicalize(rng.random(dim) * 1.4 - 0.2)
        answer = va.nearest(query, k=k)
        expected = np.sort(EUCLIDEAN.distances(query, va.points))[:k]
        assert np.allclose(answer.distances, expected)

    @given(seed=st.integers(0, 2**16), radius=st.floats(0, 1.5))
    @settings(max_examples=15, deadline=None)
    def test_range_matches_brute_force(self, seed, radius):
        rng = np.random.default_rng(seed)
        data = canonicalize(rng.random((80, 4)))
        va = VAFile(data, bits=3, disk=_small_disk())
        query = canonicalize(rng.random(4))
        answer = va.range_query(query, radius)
        expected = set(
            np.flatnonzero(
                EUCLIDEAN.distances(query, va.points) <= radius
            ).tolist()
        )
        assert set(answer.ids.tolist()) == expected


class TestXTreeProperties:
    @given(
        seed=st.integers(0, 2**16),
        n=st.integers(5, 250),
        dim=st.integers(1, 8),
        k=st.integers(1, 4),
    )
    @settings(max_examples=20, deadline=None)
    def test_knn_matches_brute_force(self, seed, n, dim, k):
        rng = np.random.default_rng(seed)
        data = canonicalize(rng.random((n, dim)))
        k = min(k, n)
        xt = XTree(data, disk=_small_disk())
        query = canonicalize(rng.random(dim) * 1.4 - 0.2)
        answer = xt.nearest(query, k=k)
        expected = np.sort(EUCLIDEAN.distances(query, xt.points))[:k]
        assert np.allclose(answer.distances, expected)

    @given(
        seed=st.integers(0, 2**16),
        n_initial=st.integers(5, 60),
        n_inserts=st.integers(1, 60),
    )
    @settings(max_examples=15, deadline=None)
    def test_knn_correct_after_inserts(self, seed, n_initial, n_inserts):
        rng = np.random.default_rng(seed)
        data = canonicalize(rng.random((n_initial, 4)))
        xt = XTree(data, disk=_small_disk())
        for _ in range(n_inserts):
            xt.insert(canonicalize(rng.random(4)))
        query = canonicalize(rng.random(4))
        answer = xt.nearest(query, k=2)
        expected = np.sort(EUCLIDEAN.distances(query, xt.points))[:2]
        assert np.allclose(answer.distances, expected)


class TestScanProperties:
    @given(seed=st.integers(0, 2**16), k=st.integers(1, 6))
    @settings(max_examples=15, deadline=None)
    def test_reference_is_self_consistent(self, seed, k):
        rng = np.random.default_rng(seed)
        data = canonicalize(rng.random((50, 5)))
        scan = SequentialScan(data, disk=_small_disk())
        query = canonicalize(rng.random(5))
        answer = scan.nearest(query, k=k)
        assert np.all(np.diff(answer.distances) >= 0)
        recomputed = EUCLIDEAN.distances(query, data[answer.ids])
        assert np.allclose(answer.distances, recomputed)
