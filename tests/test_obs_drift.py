"""Cost-model drift monitor: deterministic percentile math, prediction
caching, and the registry histogram feed."""

from __future__ import annotations

import pytest

from repro.core.tree import IQTree
from repro.obs.drift import DriftMonitor, DriftReport, DriftSample
from repro.obs.instruments import (
    DRIFT_PAGE_ERROR,
    DRIFT_TIME_ERROR,
    REGISTRY,
)
from repro.storage.disk import DiskModel, SimulatedDisk


@pytest.fixture
def live_registry():
    REGISTRY.reset()
    REGISTRY.enable()
    try:
        yield REGISTRY
    finally:
        REGISTRY.disable()
        REGISTRY.reset()


@pytest.fixture
def tree(rng):
    disk = SimulatedDisk(
        DiskModel(t_seek=0.010, t_xfer=0.001, block_size=512)
    )
    return IQTree.build(rng.random((800, 6)), disk=disk)


class TestDriftSample:
    def test_relative_errors(self):
        s = DriftSample(
            predicted_pages=4.0,
            actual_pages=5.0,
            predicted_seconds=0.10,
            actual_seconds=0.08,
        )
        assert s.page_error == pytest.approx(0.25)
        assert s.time_error == pytest.approx(0.2)

    def test_zero_prediction_does_not_divide_by_zero(self):
        s = DriftSample(
            predicted_pages=0.0,
            actual_pages=1.0,
            predicted_seconds=0.0,
            actual_seconds=0.0,
        )
        assert s.page_error > 0
        assert s.time_error == 0.0


class TestDriftMonitorDeterministic:
    def test_percentiles_over_known_workload(self):
        """Errors 0.1, 0.2, ..., 1.0 give known percentile positions."""
        monitor = DriftMonitor()
        for i in range(1, 11):
            monitor.record(
                predicted_pages=10.0,
                actual_pages=10.0 + i,  # error = i / 10
                predicted_seconds=1.0,
                actual_seconds=1.0 + i / 10,
            )
        report = monitor.report()
        assert report.count == 10
        assert report.page_error_mean == pytest.approx(0.55)
        assert report.page_error_p50 == pytest.approx(0.55)
        assert report.page_error_p90 == pytest.approx(0.91)
        assert report.page_error_max == pytest.approx(1.0)
        assert report.time_error_max == pytest.approx(1.0)

    def test_empty_report(self):
        report = DriftMonitor().report()
        assert report == DriftReport(0, *([0.0] * 8))
        assert "no samples" in report.summary()

    def test_window_is_bounded(self):
        monitor = DriftMonitor(capacity=3)
        for i in range(10):
            monitor.record(1.0, 1.0 + i, 1.0, 1.0)
        assert len(monitor) == 3
        assert monitor.samples[0].actual_pages == pytest.approx(8.0)

    def test_reset(self):
        monitor = DriftMonitor()
        monitor.record(1.0, 2.0, 1.0, 2.0)
        monitor.reset()
        assert len(monitor) == 0

    def test_to_dict_round_trips_summary_fields(self):
        monitor = DriftMonitor()
        monitor.record(1.0, 2.0, 1.0, 1.5)
        payload = monitor.report().to_dict()
        assert payload["count"] == 1
        assert payload["page_error"]["max"] == pytest.approx(1.0)
        assert payload["time_error"]["max"] == pytest.approx(0.5)


class TestObserveQuery:
    def test_records_against_tree_model(self, tree):
        monitor = DriftMonitor()
        sample = monitor.observe_query(
            tree, k=3, actual_pages=4, actual_seconds=0.05
        )
        assert sample.predicted_pages > 0
        assert sample.predicted_seconds > 0
        assert len(monitor) == 1

    def test_prediction_cached_per_layout_and_k(self, tree):
        monitor = DriftMonitor()
        monitor.observe_query(tree, 3, 4, 0.05)
        monitor.observe_query(tree, 3, 5, 0.06)
        assert len(monitor._predictions) == 1
        monitor.observe_query(tree, 5, 5, 0.06)
        assert len(monitor._predictions) == 2

    def test_query_paths_feed_monitor_and_histograms(
        self, tree, rng, live_registry
    ):
        from repro import obs
        from repro.core.search import nearest_neighbors

        obs.drift.reset()
        engine = tree.query_engine()
        batch = engine.knn_batch(rng.random((4, 6)), k=2)
        assert len(batch.queries) == 4
        nearest_neighbors(tree, rng.random(6), k=2)
        assert len(obs.drift) == 5
        assert DRIFT_PAGE_ERROR.count() == 5
        assert DRIFT_TIME_ERROR.count() == 5
        obs.drift.reset()

    def test_disabled_registry_records_no_histograms(self, tree, rng):
        from repro import obs

        assert not REGISTRY.enabled
        obs.drift.reset()
        before = DRIFT_PAGE_ERROR.count()
        tree.query_engine().knn_batch(rng.random((3, 6)), k=2)
        assert DRIFT_PAGE_ERROR.count() == before
        assert len(obs.drift) == 0  # monitor only fed when enabled
