"""Tests for the batch query engine (``repro.engine``).

The engine must return *exactly* what the single-query APIs return --
same ids, same distances, same order -- while doing strictly less
simulated I/O than a sequential loop over the same queries.  Both
properties are acceptance criteria of the batch-engine milestone and
are asserted here at tier-1 scale.
"""

import numpy as np
import pytest

from repro.core.tree import IQTree
from repro.engine import BatchResult, QueryEngine
from repro.exceptions import SearchError
from repro.storage.cache import BufferPool
from repro.storage.disk import DiskModel, SimulatedDisk


def make_disk() -> SimulatedDisk:
    return SimulatedDisk(
        DiskModel(t_seek=0.0025, t_xfer=0.0002, block_size=2048)
    )


@pytest.fixture
def data(rng) -> np.ndarray:
    return rng.random((1200, 8)).astype(np.float32).astype(np.float64)


@pytest.fixture
def queries(rng, data) -> np.ndarray:
    return rng.random((12, 8))


@pytest.fixture
def tree(data) -> IQTree:
    return IQTree.build(data, disk=make_disk())


@pytest.fixture
def quantized_tree(data) -> IQTree:
    """A tree whose pages all need third-level refinement (g=5)."""
    return IQTree.build(
        data, disk=make_disk(), optimize=False, fixed_bits=5
    )


class TestKnnBatchCorrectness:
    @pytest.mark.parametrize("k", [1, 4, 10])
    def test_matches_single_query_api(self, tree, queries, k):
        results = QueryEngine(tree).knn_batch(queries, k=k)
        assert len(results) == len(queries)
        for query, got in zip(queries, results):
            ref = tree.nearest(query, k=k)
            assert np.array_equal(got.ids, ref.ids)
            assert np.allclose(got.distances, ref.distances)

    def test_matches_on_quantized_pages(self, quantized_tree, queries):
        results = QueryEngine(quantized_tree).knn_batch(queries, k=6)
        for query, got in zip(queries, results):
            ref = quantized_tree.nearest(query, k=6)
            assert np.array_equal(got.ids, ref.ids)
            assert np.allclose(got.distances, ref.distances)

    def test_single_query_batch(self, tree, queries):
        got = QueryEngine(tree).knn_batch(queries[:1], k=3)[0]
        ref = tree.nearest(queries[0], k=3)
        assert np.array_equal(got.ids, ref.ids)

    def test_matches_after_deletions(self, quantized_tree, queries):
        for pid in range(0, 200, 3):
            quantized_tree.delete(pid)
        results = QueryEngine(quantized_tree).knn_batch(queries, k=5)
        for query, got in zip(queries, results):
            ref = quantized_tree.nearest(query, k=5)
            assert np.array_equal(got.ids, ref.ids)

    def test_k_exceeding_live_points_returns_all_live(self, rng):
        data = rng.random((40, 4))
        tree = IQTree.build(
            data, disk=make_disk(), optimize=False, fixed_bits=4
        )
        for pid in range(30):
            tree.delete(pid)
        got = QueryEngine(tree).knn_batch(rng.random((2, 4)), k=20)
        for res in got:
            assert res.ids.size == tree.n_live_points


class TestRangeBatchCorrectness:
    def test_matches_single_query_api_exactly(self, tree, queries):
        results = QueryEngine(tree).range_batch(queries, 0.35)
        for query, got in zip(queries, results):
            ref = tree.range_query(query, 0.35)
            assert np.array_equal(got.ids, ref.ids)
            assert np.allclose(got.distances, ref.distances)

    def test_matches_on_quantized_pages(self, quantized_tree, queries):
        results = QueryEngine(quantized_tree).range_batch(queries, 0.4)
        for query, got in zip(queries, results):
            ref = quantized_tree.range_query(query, 0.4)
            assert np.array_equal(got.ids, ref.ids)
            assert np.allclose(got.distances, ref.distances)

    def test_per_query_radii(self, tree, queries):
        radii = np.linspace(0.1, 0.5, queries.shape[0])
        results = QueryEngine(tree).range_batch(queries, radii)
        for query, radius, got in zip(queries, radii, results):
            ref = tree.range_query(query, float(radius))
            assert np.array_equal(got.ids, ref.ids)

    def test_zero_radius_empty_results(self, tree, queries):
        results = QueryEngine(tree).range_batch(queries, 0.0)
        for got in results:
            assert got.ids.size == 0


class TestBatchBeatsSequential:
    """The ISSUE acceptance criterion at test scale."""

    def test_fewer_seeks_and_lower_io_time(self, data, queries):
        seq_tree = IQTree.build(data, disk=make_disk())
        before = seq_tree.disk.stats
        seq_elapsed0, seq_seeks0 = before.elapsed, before.seeks
        for query in queries:
            seq_tree.disk.park()
            seq_tree.nearest(query, k=5)
        seq_elapsed = seq_tree.disk.stats.elapsed - seq_elapsed0
        seq_seeks = seq_tree.disk.stats.seeks - seq_seeks0

        bat_tree = IQTree.build(data, disk=make_disk())
        result = QueryEngine(bat_tree).knn_batch(queries, k=5)
        assert result.stats.io.seeks < seq_seeks
        assert result.stats.io.elapsed < seq_elapsed

    def test_range_batch_also_wins(self, data, queries):
        seq_tree = IQTree.build(data, disk=make_disk())
        start = seq_tree.disk.stats.elapsed
        for query in queries:
            seq_tree.disk.park()
            seq_tree.range_query(query, 0.3)
        seq_elapsed = seq_tree.disk.stats.elapsed - start

        bat_tree = IQTree.build(data, disk=make_disk())
        result = QueryEngine(bat_tree).range_batch(queries, 0.3)
        assert result.stats.io.elapsed < seq_elapsed


class TestStats:
    def test_batch_stats_accounting(self, quantized_tree, queries):
        result = QueryEngine(quantized_tree).knn_batch(queries, k=5)
        stats = result.stats
        assert stats.n_queries == len(queries)
        assert 0 < stats.pages_read <= quantized_tree.n_pages
        assert stats.refinements > 0
        assert stats.bytes_transferred == (
            stats.io.blocks_read
            * quantized_tree.disk.model.block_size
        )
        assert stats.mean_time == pytest.approx(
            stats.io.elapsed / len(queries)
        )

    def test_query_stats_sane(self, quantized_tree, queries):
        result = QueryEngine(quantized_tree).knn_batch(queries, k=5)
        for got in result:
            assert got.stats.candidate_pages >= 1
            assert got.stats.candidate_points >= got.stats.refinements
            assert got.stats.refinements >= 0

    def test_shared_pages_fetched_once(self, quantized_tree, queries):
        """A page needed by many queries is transferred once."""
        result = QueryEngine(quantized_tree).knn_batch(queries, k=5)
        total_candidate_pages = sum(
            r.stats.candidate_pages for r in result
        )
        assert result.stats.pages_read < total_candidate_pages

    def test_batch_result_container(self, tree, queries):
        result = QueryEngine(tree).knn_batch(queries[:3], k=2)
        assert isinstance(result, BatchResult)
        assert len(result) == 3
        assert [r.ids.size for r in result] == [2, 2, 2]
        assert result[2].ids.size == 2


class TestBufferPoolIntegration:
    def test_warm_batch_is_all_hits(self, data, queries):
        tree = IQTree.build(data, disk=make_disk())
        engine = QueryEngine(tree, pool=4096)
        engine.knn_batch(queries, k=5)
        warm = QueryEngine(tree).knn_batch(queries, k=5)
        assert warm.stats.io.blocks_read == 0
        assert warm.stats.pool_misses == 0
        assert warm.stats.pool_hits > 0
        assert warm.stats.pool_hit_rate == 1.0

    def test_hit_rate_consistent_with_disk_ledger(self, data, queries):
        """Exact counters: on a cold pool, every miss is a transferred
        requested block.  Gap blocks over-read by the Section 2 plan are
        transferred without ever being requested, so they appear in the
        disk ledger but not in the pool counters."""
        tree = IQTree.build(data, disk=make_disk())
        engine = QueryEngine(tree, pool=4096)
        result = engine.knn_batch(queries, k=5)
        io = result.stats.io
        assert result.stats.pool_misses == (
            io.blocks_read - io.blocks_overread
        )
        assert result.stats.pool_hits == 0

    def test_shared_pool_across_engines(self, data, queries):
        pool = BufferPool(4096)
        tree_a = IQTree.build(data, disk=make_disk())
        tree_b = IQTree.build(data, disk=make_disk())
        QueryEngine(tree_a, pool=pool).knn_batch(queries, k=3)
        engine_b = QueryEngine(tree_b, pool=pool)
        assert engine_b.pool is pool
        result = engine_b.knn_batch(queries, k=3)
        assert result.stats.n_queries == len(queries)

    def test_engine_without_pool_reports_zero_pool_traffic(
        self, tree, queries
    ):
        result = QueryEngine(tree).knn_batch(queries, k=3)
        assert result.stats.pool_hits == 0
        assert result.stats.pool_misses == 0
        assert result.stats.pool_hit_rate == 0.0

    def test_tree_query_engine_convenience(self, tree, queries):
        engine = tree.query_engine(pool=64)
        assert isinstance(engine, QueryEngine)
        assert engine.pool is tree._pool
        result = engine.knn_batch(queries[:2], k=1)
        assert len(result) == 2


class TestValidation:
    def test_rejects_k_below_one(self, tree, queries):
        with pytest.raises(SearchError):
            QueryEngine(tree).knn_batch(queries, k=0)

    def test_rejects_k_above_n_points(self, tree, queries):
        with pytest.raises(SearchError):
            QueryEngine(tree).knn_batch(queries, k=tree.n_points + 1)

    def test_rejects_bad_query_shape(self, tree):
        with pytest.raises(SearchError):
            QueryEngine(tree).knn_batch(np.zeros((2, 3)), k=1)
        with pytest.raises(SearchError):
            QueryEngine(tree).knn_batch(np.zeros(8), k=1)

    def test_rejects_non_finite_queries(self, tree, queries):
        bad = queries.copy()
        bad[0, 0] = np.nan
        with pytest.raises(SearchError):
            QueryEngine(tree).knn_batch(bad, k=1)

    def test_rejects_negative_radius(self, tree, queries):
        with pytest.raises(SearchError):
            QueryEngine(tree).range_batch(queries, -0.1)
        radii = np.full(queries.shape[0], 0.2)
        radii[3] = -0.01
        with pytest.raises(SearchError):
            QueryEngine(tree).range_batch(queries, radii)

    def test_rejects_infinite_radius(self, tree, queries):
        with pytest.raises(SearchError):
            QueryEngine(tree).range_batch(queries, np.inf)

    def test_empty_batch(self, tree):
        result = QueryEngine(tree).knn_batch(
            np.empty((0, tree.dim)), k=2
        )
        assert len(result) == 0
        assert result.stats.mean_time == 0.0
