"""Tests for the public package surface and the exception hierarchy."""

import numpy as np
import pytest

import repro
from repro import exceptions


class TestTopLevelExports:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_iqtree_importable_from_top_level(self):
        from repro import IQTree

        data = np.random.default_rng(0).random((50, 4))
        tree = IQTree.build(data)
        assert tree.n_points == 50

    def test_subpackage_alls_resolve(self):
        import repro.baselines
        import repro.costmodel
        import repro.datasets
        import repro.experiments
        import repro.geometry
        import repro.quantization
        import repro.storage

        for module in (
            repro.baselines,
            repro.costmodel,
            repro.datasets,
            repro.experiments,
            repro.geometry,
            repro.quantization,
            repro.storage,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None, (
                    f"{module.__name__}.{name}"
                )


class TestExceptionHierarchy:
    ALL = [
        exceptions.GeometryError,
        exceptions.StorageError,
        exceptions.PageOverflowError,
        exceptions.IntegrityError,
        exceptions.QuantizationError,
        exceptions.CostModelError,
        exceptions.BuildError,
        exceptions.SearchError,
    ]

    @pytest.mark.parametrize("exc", ALL)
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, exceptions.ReproError)

    def test_page_overflow_is_storage_error(self):
        assert issubclass(
            exceptions.PageOverflowError, exceptions.StorageError
        )

    def test_integrity_is_storage_error(self):
        assert issubclass(
            exceptions.IntegrityError, exceptions.StorageError
        )
        assert exceptions.IntegrityError("boom", section="meta").section == "meta"

    def test_one_except_clause_catches_everything(self):
        from repro.geometry.mbr import MBR

        with pytest.raises(exceptions.ReproError):
            MBR([1.0], [0.0])


class TestDocstrings:
    def test_every_public_module_documented(self):
        import importlib
        import pkgutil

        missing = []
        package = importlib.import_module("repro")
        for info in pkgutil.walk_packages(
            package.__path__, prefix="repro."
        ):
            module = importlib.import_module(info.name)
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"undocumented modules: {missing}"

    def test_key_public_classes_documented(self):
        from repro.baselines import SequentialScan, VAFile, XTree
        from repro.core.tree import IQTree
        from repro.costmodel.model import CostModel

        for cls in (IQTree, XTree, VAFile, SequentialScan, CostModel):
            assert (cls.__doc__ or "").strip(), cls.__name__
            for name, member in vars(cls).items():
                if name.startswith("_") or not callable(member):
                    continue
                assert (member.__doc__ or "").strip(), (
                    f"{cls.__name__}.{name} lacks a docstring"
                )
