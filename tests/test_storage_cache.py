"""Tests for the LRU buffer pool and cached block file."""

import numpy as np
import pytest

from repro.exceptions import StorageError
from repro.core.tree import IQTree
from repro.storage.blockfile import BlockFile
from repro.storage.cache import BufferPool, CachedBlockFile
from repro.storage.disk import DiskModel, SimulatedDisk


@pytest.fixture
def disk():
    return SimulatedDisk(DiskModel(t_seek=0.01, t_xfer=0.001, block_size=64))


@pytest.fixture
def cached(disk):
    f = BlockFile(disk)
    for i in range(20):
        f.append_block(bytes([i]) * 8)
    f.seal()
    return CachedBlockFile(f, BufferPool(8))


class TestBufferPool:
    def test_lru_eviction(self):
        pool = BufferPool(2)
        pool.admit(1)
        pool.admit(2)
        pool.admit(3)  # evicts 1
        assert not pool.lookup(1)
        assert pool.lookup(2)
        assert pool.lookup(3)

    def test_lookup_refreshes_recency(self):
        pool = BufferPool(2)
        pool.admit(1)
        pool.admit(2)
        pool.lookup(1)  # 1 is now most recent
        pool.admit(3)  # evicts 2
        assert pool.lookup(1)
        assert not pool.lookup(2)

    def test_zero_capacity_never_caches(self):
        pool = BufferPool(0)
        pool.admit(1)
        assert not pool.lookup(1)

    def test_hit_rate(self):
        pool = BufferPool(4)
        pool.admit(1)
        pool.lookup(1)
        pool.lookup(2)
        assert pool.hits == 1 and pool.misses == 1
        assert pool.hit_rate == pytest.approx(0.5)

    def test_hit_rate_defined_on_cold_pool(self):
        # Regression: hit_rate is 0.0 by definition before any charged
        # lookup -- never a ZeroDivisionError, readable at any time.
        pool = BufferPool(4)
        assert pool.hit_rate == 0.0
        assert "hit_rate=0.00" in repr(pool)
        pool.admit(1)  # admissions alone charge no lookups
        assert pool.hit_rate == 0.0
        pool.record()  # zero-count charge keeps it well-defined
        assert pool.hit_rate == 0.0

    def test_invalidate(self):
        pool = BufferPool(4)
        pool.admit(1)
        pool.invalidate(1)
        assert not pool.lookup(1)

    def test_clear_keeps_counters(self):
        pool = BufferPool(4)
        pool.admit(1)
        pool.lookup(1)
        pool.clear()
        assert pool.resident_count == 0
        assert pool.hits == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(-1)


class TestCachedBlockFile:
    def test_repeat_read_is_free(self, cached, disk):
        cached.read_block(3)
        cost_after_first = disk.stats.elapsed
        payload = cached.read_block(3)
        assert payload == bytes([3]) * 8
        assert disk.stats.elapsed == cost_after_first

    def test_run_read_admits_all_blocks(self, cached, disk):
        cached.read_run(2, 5)
        cost = disk.stats.elapsed
        for i in range(2, 7):
            cached.read_block(i)
        assert disk.stats.elapsed == cost

    def test_partial_residency_fetches_span(self, cached, disk):
        cached.read_block(4)
        before = disk.stats.blocks_read
        payloads = cached.read_run(2, 5)  # 4 resident, 2-3 and 5-6 not
        assert [p[0] for p in payloads] == [2, 3, 4, 5, 6]
        # One sequential fetch of the missing span 2..6 (re-reading 4
        # is cheaper than splitting the transfer).
        assert disk.stats.blocks_read - before <= 5

    def test_eviction_causes_reread(self, disk):
        f = BlockFile(disk)
        for i in range(20):
            f.append_block(bytes([i]))
        f.seal()
        cached = CachedBlockFile(f, BufferPool(2))
        cached.read_block(0)
        cached.read_block(1)
        cached.read_block(2)  # evicts 0
        before = disk.stats.blocks_read
        cached.read_block(0)
        assert disk.stats.blocks_read == before + 1

    def test_read_batched_skips_resident(self, cached, disk):
        cached.read_block(10)
        before = disk.stats.blocks_read
        result = cached.read_batched([9, 10, 11])
        assert set(result) == {9, 10, 11}
        assert disk.stats.blocks_read - before <= 3

    def test_passthrough_attributes(self, cached):
        assert cached.n_blocks == 20
        assert len(cached) == 20


class TestPeekAndExactCounters:
    def test_peek_has_no_side_effects(self):
        pool = BufferPool(4)
        pool.admit(1)
        assert pool.peek(1)
        assert not pool.peek(2)
        assert pool.hits == 0 and pool.misses == 0

    def test_peek_does_not_refresh_recency(self):
        pool = BufferPool(2)
        pool.admit(1)
        pool.admit(2)
        pool.peek(1)  # must NOT make 1 most-recent
        pool.admit(3)  # evicts 1 (still least recent)
        assert not pool.peek(1)
        assert pool.peek(2) and pool.peek(3)

    def test_record_validates(self):
        pool = BufferPool(2)
        with pytest.raises(StorageError):
            pool.record(hits=-1)
        pool.record(hits=2, misses=3)
        assert pool.hits == 2 and pool.misses == 3

    def test_run_hit_rate_exact(self, cached):
        pool = cached.pool
        cached.read_run(0, 6)
        assert (pool.hits, pool.misses) == (0, 6)
        cached.read_run(0, 6)
        assert (pool.hits, pool.misses) == (6, 6)
        assert pool.hit_rate == pytest.approx(0.5)

    def test_planning_does_not_inflate_hits(self, cached, disk):
        # Block 4 is resident but lies inside the span the run fetch
        # re-transfers; the old planning pass counted it as a hit even
        # though its bytes came from the disk again.
        cached.read_block(4)
        assert (cached.pool.hits, cached.pool.misses) == (0, 1)
        before = disk.stats.blocks_read
        cached.read_run(2, 5)
        assert disk.stats.blocks_read - before == 5
        assert cached.pool.hits == 0
        assert cached.pool.misses == 6
        # Every charged miss corresponds to one transferred block.
        assert cached.pool.misses == disk.stats.blocks_read

    def test_run_hits_only_outside_fetched_span(self, cached):
        cached.read_block(2)  # miss 1
        cached.read_block(6)  # miss 2
        # Run 2..6: 2 and 6 are resident, 3-5 missing; the fetched span
        # is 3..5, so exactly the two outside blocks count as hits.
        cached.read_run(2, 5)
        assert cached.pool.hits == 2
        assert cached.pool.misses == 5

    def test_batched_hit_rate_exact(self, cached):
        cached.read_block(10)
        cached.read_batched([9, 10, 11])
        assert cached.pool.hits == 1  # block 10 served from the pool
        assert cached.pool.misses == 3  # 10 cold + 9, 11 fetched

    def test_planning_does_not_perturb_eviction_order(self, disk):
        f = BlockFile(disk)
        for i in range(20):
            f.append_block(bytes([i]))
        f.seal()
        cached = CachedBlockFile(f, BufferPool(3))
        cached.read_block(0)
        cached.read_block(1)
        cached.read_block(2)
        # A fully-resident run charges hits in block order, so 0 is
        # refreshed first and 2 last; the next admit evicts 0.
        cached.read_run(0, 3)
        cached.read_block(10)
        assert not cached.pool.peek(disk_address(cached, 0))
        assert cached.pool.peek(disk_address(cached, 1))


def disk_address(cached, index):
    return cached._file.extent_start + index


class TestBatchedPartialFailure:
    """A failing batched read must not corrupt the hit/miss ledger."""

    def test_failed_run_charges_nothing(self, cached, disk):
        from repro.storage.faults import ReadFaultInjector

        cached.read_block(10)  # resident: would be the batch's one hit
        assert (cached.pool.hits, cached.pool.misses) == (0, 1)
        injector = ReadFaultInjector()
        injector.fail_always(disk_address(cached, 12))
        disk.install_fault_injector(injector)
        with pytest.raises(StorageError):
            cached.read_batched([9, 10, 11, 12, 13])
        # The single run 9..13 never completed: no misses charged for
        # it, and the resident hit is only charged on full success.
        assert (cached.pool.hits, cached.pool.misses) == (0, 1)
        disk.clear_fault_injector()
        result = cached.read_batched([9, 10, 11, 12, 13])
        assert set(result) == {9, 10, 11, 12, 13}
        assert (cached.pool.hits, cached.pool.misses) == (1, 5)

    def test_completed_runs_stay_charged(self, cached, disk):
        from repro.storage.faults import ReadFaultInjector

        injector = ReadFaultInjector()
        injector.fail_always(disk_address(cached, 15))
        disk.install_fault_injector(injector)
        # Blocks 0 and 15 are farther apart than the overread window
        # (v = 10), so the plan is two runs; the first completes and is
        # charged, the second fails after the charge point.
        with pytest.raises(StorageError):
            cached.read_batched([0, 15])
        assert (cached.pool.hits, cached.pool.misses) == (0, 1)
        # The completed run's block really is resident and servable.
        assert cached.pool.peek(disk_address(cached, 0))
        assert not cached.pool.peek(disk_address(cached, 15))

    def test_avoid_excludes_blocks_from_plan(self, cached, disk):
        before = disk.stats.blocks_read
        result = cached.read_batched([3, 4, 5], avoid={4})
        assert set(result) == {3, 5}
        assert not cached.pool.peek(disk_address(cached, 4))
        # 3 and 5 merge across the forbidden gap only by re-reading 4,
        # which `avoid` forbids: two separate single-block transfers.
        assert disk.stats.blocks_read - before == 2


class TestAdmissionUnification:
    """Every transferred block is admitted, whichever path fetched it.

    Satellite regression: ``read_batched`` used to admit only the
    *requested* missing blocks, silently dropping the gap blocks its
    plan over-read -- while ``read_run`` admits its whole span.  The
    same physical transfer then left different pool contents depending
    on which read path issued it, so later hit/miss ledgers diverged on
    internal routing rather than on access pattern.
    """

    def test_gap_overreads_are_admitted(self, cached, disk):
        # The overread window (10 blocks) merges [2, 4] into one run
        # 2..4 with wanted=2: block 3 is transferred as a gap.
        cached.read_batched([2, 4])
        assert (cached.pool.hits, cached.pool.misses) == (0, 2)
        before = disk.stats.blocks_read
        payload = cached.read_block(3)
        assert payload == bytes([3]) * 8
        # Transferred means resident: no second physical read.
        assert disk.stats.blocks_read == before
        assert (cached.pool.hits, cached.pool.misses) == (1, 2)

    def test_batched_and_run_leave_identical_residency(self):
        def residency(use_batched):
            disk = SimulatedDisk(
                DiskModel(t_seek=0.01, t_xfer=0.001, block_size=64)
            )
            f = BlockFile(disk)
            for i in range(20):
                f.append_block(bytes([i]) * 8)
            f.seal()
            c = CachedBlockFile(f, BufferPool(8))
            if use_batched:
                c.read_batched([2, 4])  # one run 2..4, wanted=2
            else:
                c.read_run(2, 3)  # the same physical span
            return [c.pool.peek(disk_address(c, i)) for i in range(7)]

        assert residency(True) == residency(False)

    def test_avoided_blocks_never_admitted_even_when_spanned(
        self, cached, disk
    ):
        # Defensive pin on the unified admit loop: quarantined blocks
        # must stay out of the pool no matter how the plan shapes runs.
        cached.read_batched([3, 4, 5], avoid={4})
        assert not cached.pool.peek(disk_address(cached, 4))


class TestGetattrGuard:
    def test_missing_attribute_raises_cleanly(self, cached):
        with pytest.raises(AttributeError, match="no_such_attr"):
            cached.no_such_attr

    def test_bare_instance_does_not_recurse(self):
        bare = CachedBlockFile.__new__(CachedBlockFile)
        with pytest.raises(AttributeError):
            bare.anything
        with pytest.raises(AttributeError):
            bare._file

    def test_deepcopy_roundtrip(self, cached):
        import copy

        clone = copy.deepcopy(cached)
        assert clone.n_blocks == cached.n_blocks
        assert clone.read_block(3) == bytes([3]) * 8

    def test_pickle_roundtrip(self, cached):
        import pickle

        clone = pickle.loads(pickle.dumps(cached))
        assert clone.n_blocks == cached.n_blocks
        assert clone.pool.capacity == cached.pool.capacity


class TestTreeWithPool:
    def test_answers_unchanged(self, uniform_points, small_disk, rng):
        from repro.storage.disk import SimulatedDisk

        plain = IQTree.build(uniform_points, disk=small_disk)
        pooled = IQTree.build(
            uniform_points, disk=SimulatedDisk(small_disk.model)
        )
        pooled.use_buffer_pool(4096)
        for _ in range(5):
            q = rng.random(8)
            a = plain.nearest(q, k=3)
            b = pooled.nearest(q, k=3)
            assert np.array_equal(a.ids, b.ids)

    def test_warm_queries_cheaper(self, uniform_points, small_disk, rng):
        tree = IQTree.build(uniform_points, disk=small_disk)
        pool = tree.use_buffer_pool(100_000)  # everything fits
        q = rng.random(8)
        tree.disk.park()
        cold = tree.nearest(q).io.elapsed
        tree.disk.park()
        warm = tree.nearest(q).io.elapsed
        assert warm < cold * 0.2
        assert pool.hit_rate > 0

    def test_shared_pool_across_indexes(self, uniform_points, small_disk):
        tree1 = IQTree.build(uniform_points[:500], disk=small_disk)
        tree2 = IQTree.build(uniform_points[500:1000], disk=small_disk)
        pool = tree1.use_buffer_pool(1000)
        tree2.use_buffer_pool(pool)
        tree1.nearest(np.full(8, 0.5))
        tree2.nearest(np.full(8, 0.5))
        assert pool.resident_count > 0

    def test_pool_survives_maintenance(self, uniform_points, small_disk, rng):
        tree = IQTree.build(uniform_points[:500], disk=small_disk)
        pool = tree.use_buffer_pool(10_000)
        tree.nearest(rng.random(8))
        tree.insert(rng.random(8))  # marks dirty; next query re-lays out
        result = tree.nearest(rng.random(8))
        assert result.ids.size == 1
        assert tree._pool is pool

    def test_zero_capacity_matches_uncached(self, uniform_points, small_disk, rng):
        from repro.storage.disk import SimulatedDisk

        plain = IQTree.build(uniform_points[:800], disk=small_disk)
        zero = IQTree.build(
            uniform_points[:800], disk=SimulatedDisk(small_disk.model)
        )
        zero.use_buffer_pool(0)
        q = rng.random(8)
        plain.disk.park()
        zero.disk.park()
        assert plain.nearest(q).io.elapsed == pytest.approx(
            zero.nearest(q).io.elapsed
        )
