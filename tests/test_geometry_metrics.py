"""Tests for the distance metrics and their unit-ball volumes."""

import math

import numpy as np
import pytest

from repro.exceptions import GeometryError
from repro.geometry.metrics import (
    EUCLIDEAN,
    MAXIMUM,
    LpMetric,
    get_metric,
)


class TestEuclidean:
    def test_distance(self):
        assert EUCLIDEAN.distance([0, 0], [3, 4]) == pytest.approx(5.0)

    def test_distances_vectorized(self, rng):
        pts = rng.random((40, 6))
        q = rng.random(6)
        expected = np.sqrt(((pts - q) ** 2).sum(axis=1))
        assert np.allclose(EUCLIDEAN.distances(q, pts), expected)

    def test_unit_ball_volume_known_values(self):
        assert EUCLIDEAN.unit_ball_volume(1) == pytest.approx(2.0)
        assert EUCLIDEAN.unit_ball_volume(2) == pytest.approx(math.pi)
        assert EUCLIDEAN.unit_ball_volume(3) == pytest.approx(
            4.0 / 3.0 * math.pi
        )

    def test_ball_volume_scaling(self):
        v1 = EUCLIDEAN.ball_volume(1.0, 5)
        v2 = EUCLIDEAN.ball_volume(2.0, 5)
        assert v2 == pytest.approx(v1 * 2**5)

    def test_ball_radius_inverts_volume(self):
        for d in (1, 2, 7, 16):
            r = 0.37
            v = EUCLIDEAN.ball_volume(r, d)
            assert EUCLIDEAN.ball_radius(v, d) == pytest.approx(r)


class TestMaximum:
    def test_distance(self):
        assert MAXIMUM.distance([0, 0, 0], [1, -3, 2]) == pytest.approx(3.0)

    def test_unit_ball_is_cube(self):
        assert MAXIMUM.unit_ball_volume(4) == pytest.approx(16.0)

    def test_ball_radius_inverts_volume(self):
        v = MAXIMUM.ball_volume(0.25, 6)
        assert MAXIMUM.ball_radius(v, 6) == pytest.approx(0.25)


class TestLp:
    def test_l1_is_manhattan(self):
        m = LpMetric(1)
        assert m.distance([0, 0], [1, 2]) == pytest.approx(3.0)

    def test_l2_matches_euclidean(self, rng):
        m = LpMetric(2)
        a, b = rng.random(5), rng.random(5)
        assert m.distance(a, b) == pytest.approx(EUCLIDEAN.distance(a, b))

    def test_l1_unit_ball_volume(self):
        # Cross-polytope: 2^d / d!
        m = LpMetric(1)
        assert m.unit_ball_volume(3) == pytest.approx(8.0 / 6.0)

    def test_rejects_p_below_one(self):
        with pytest.raises(GeometryError):
            LpMetric(0.5)


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["euclidean", "l2", "L2", "maximum", "linf", "chebyshev"]
    )
    def test_known_names(self, name):
        assert get_metric(name) is not None

    def test_passthrough(self):
        assert get_metric(EUCLIDEAN) is EUCLIDEAN

    def test_lp_by_name(self):
        m = get_metric("l3")
        assert isinstance(m, LpMetric)
        assert m.p == 3.0

    def test_unknown_name_raises(self):
        with pytest.raises(GeometryError):
            get_metric("cosine")

    def test_euclidean_is_singleton(self):
        assert get_metric("l2") is get_metric("euclidean")


class TestMetricContract:
    @pytest.mark.parametrize("metric", [EUCLIDEAN, MAXIMUM, LpMetric(1.5)])
    def test_triangle_inequality(self, metric, rng):
        for _ in range(20):
            a, b, c = rng.random((3, 4))
            assert metric.distance(a, c) <= (
                metric.distance(a, b) + metric.distance(b, c) + 1e-12
            )

    @pytest.mark.parametrize("metric", [EUCLIDEAN, MAXIMUM, LpMetric(3)])
    def test_identity_and_symmetry(self, metric, rng):
        a, b = rng.random((2, 4))
        assert metric.distance(a, a) == 0.0
        assert metric.distance(a, b) == pytest.approx(metric.distance(b, a))

    @pytest.mark.parametrize("metric", [EUCLIDEAN, MAXIMUM])
    def test_negative_radius_rejected(self, metric):
        with pytest.raises(GeometryError):
            metric.ball_volume(-1.0, 3)

    @pytest.mark.parametrize("metric", [EUCLIDEAN, MAXIMUM])
    def test_zero_dim_rejected(self, metric):
        with pytest.raises(GeometryError):
            metric.unit_ball_volume(0)
