"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storage.disk import DiskModel, SimulatedDisk


@pytest.fixture
def small_disk() -> SimulatedDisk:
    """A disk with small blocks so trees get many pages on tiny data."""
    return SimulatedDisk(DiskModel(t_seek=0.010, t_xfer=0.001, block_size=512))


@pytest.fixture
def default_disk() -> SimulatedDisk:
    """The library's default disk model (8 KiB blocks)."""
    return SimulatedDisk()


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def uniform_points(rng) -> np.ndarray:
    """2000 canonical (float32-representable) uniform points in 8-d."""
    return rng.random((2000, 8)).astype(np.float32).astype(np.float64)


@pytest.fixture
def clustered_points(rng) -> np.ndarray:
    """1500 clustered points in 6-d (three tight Gaussian blobs)."""
    centers = np.array(
        [[0.2] * 6, [0.8] * 6, [0.2, 0.8] * 3], dtype=np.float64
    )
    assignment = rng.integers(0, 3, size=1500)
    pts = centers[assignment] + rng.normal(0, 0.03, size=(1500, 6))
    return np.clip(pts, 0, 1).astype(np.float32).astype(np.float64)


def brute_force_knn(points: np.ndarray, query: np.ndarray, k: int, metric):
    """Reference k-NN used to validate every index."""
    dists = metric.distances(query, points)
    order = np.argsort(dists, kind="stable")[:k]
    return order, dists[order]
